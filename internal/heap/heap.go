// Package heap implements the baseline C-style malloc/free allocator that
// the paper compares pm2_isomalloc against (Figure 11) and whose
// non-migrating data produces the crashes of Figures 4 and 9.
//
// Each node has its own Heap over the node-local heap region of the
// simulated address space (layout.HeapBase..HeapEnd). Blocks are carved
// first-fit from an in-memory free list with boundary-tag coalescing, and
// the region grows sbrk-style in page multiples. Nothing here follows a
// migrating thread: a heap address handed out on node 0 is, by design,
// unmapped or unrelated memory on node 1.
package heap

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/simtime"
	"repro/internal/vmem"
)

// Addr is a simulated virtual address.
type Addr = layout.Addr

// Charger absorbs virtual CPU-time charges.
type Charger interface {
	Charge(simtime.Time)
}

// Block header layout (16 bytes), followed by the payload. Free blocks keep
// their size in their last word (footer) for backward coalescing.
const (
	offSize     = 0
	offFlags    = 4
	offPrevFree = 8
	offNextFree = 12

	headerSize = 16
	minBlock   = 24

	flagFree     = 1
	flagPrevFree = 2
)

// Heap is one node's malloc arena.
type Heap struct {
	sp    *vmem.Space
	ch    Charger
	model *cost.Model
	// brk is the first unmapped heap address; [HeapBase, brk) is mapped.
	brk Addr
	// freeHead is the first free block, 0 if none. Deliberately Go-side
	// node state: the heap belongs to the container process, not to any
	// thread, and does not migrate.
	freeHead Addr
	// brkPrevFree is the would-be prev-free flag of the block "at brk":
	// it records whether the physically-last block is free, so an sbrk
	// extension knows to coalesce with it.
	brkPrevFree bool
	// stats
	nAlloc, nFree uint64
}

// New returns an empty heap for the node.
func New(sp *vmem.Space, ch Charger, model *cost.Model) *Heap {
	if model == nil {
		model = cost.Default()
	}
	return &Heap{sp: sp, ch: ch, model: model, brk: layout.HeapBase}
}

// Counts returns the number of malloc and free calls served.
func (h *Heap) Counts() (allocs, frees uint64) { return h.nAlloc, h.nFree }

// Brk returns the current heap break.
func (h *Heap) Brk() Addr { return h.brk }

func align8(n uint32) uint32 { return (n + 7) &^ 7 }

func blockTotal(size uint32) uint32 {
	t := headerSize + align8(size)
	if t < minBlock {
		t = minBlock
	}
	return t
}

type block struct {
	addr               Addr
	size, flags        uint32
	prevFree, nextFree Addr
}

func (h *Heap) readBlock(at Addr) (block, error) {
	var b block
	buf, err := h.sp.ReadBytes(at, headerSize)
	if err != nil {
		return b, err
	}
	w := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	b.addr = at
	b.size = w(offSize)
	b.flags = w(offFlags)
	b.prevFree = w(offPrevFree)
	b.nextFree = w(offNextFree)
	return b, nil
}

func (h *Heap) writeBlock(b *block) error {
	buf := make([]byte, headerSize)
	put := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put(offSize, b.size)
	put(offFlags, b.flags)
	put(offPrevFree, b.prevFree)
	put(offNextFree, b.nextFree)
	return h.sp.Write(b.addr, buf)
}

func (b *block) isFree() bool     { return b.flags&flagFree != 0 }
func (b *block) prevIsFree() bool { return b.flags&flagPrevFree != 0 }

func (h *Heap) writeFooter(b *block) error {
	return h.sp.Store32(b.addr+Addr(b.size)-4, b.size)
}

// Malloc allocates size bytes and returns the payload address, or an error
// if the heap region is exhausted.
func (h *Heap) Malloc(size uint32) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("heap: malloc(0)")
	}
	total := blockTotal(size)

	// First-fit over the free list.
	for at := h.freeHead; at != 0; {
		h.ch.Charge(h.model.Probes(1))
		b, err := h.readBlock(at)
		if err != nil {
			return 0, err
		}
		if !b.isFree() {
			return 0, fmt.Errorf("heap: live block %#08x on free list", at)
		}
		if b.size >= total {
			if err := h.carve(&b, total); err != nil {
				return 0, err
			}
			h.nAlloc++
			return b.addr + headerSize, nil
		}
		at = b.nextFree
	}

	// Extend the break (sbrk) and carve a fresh block.
	grow := layout.PageCeil(total)
	if uint64(h.brk)+uint64(grow) > uint64(layout.HeapEnd) {
		return 0, fmt.Errorf("heap: out of memory (brk %#08x + %d)", h.brk, grow)
	}
	h.ch.Charge(h.model.Mmap(int(grow / layout.PageSize)))
	if err := h.sp.Mmap(h.brk, int(grow)); err != nil {
		return 0, err
	}
	nb := block{addr: h.brk, size: grow, flags: flagFree}
	if h.brkPrevFree {
		// Coalesce the fresh region with the free block that ends at
		// the old break, keeping the no-adjacent-frees invariant.
		psz, err := h.sp.Load32(h.brk - 4)
		if err != nil {
			return 0, err
		}
		p, err := h.readBlock(h.brk - Addr(psz))
		if err != nil {
			return 0, err
		}
		if !p.isFree() || p.size != psz {
			return 0, fmt.Errorf("heap: corrupt footer at brk %#08x", h.brk)
		}
		if err := h.relink(&p, 0); err != nil {
			return 0, err
		}
		nb.addr = p.addr
		nb.size += p.size
		nb.flags |= p.flags & flagPrevFree
		h.brkPrevFree = false
	}
	h.brk += Addr(grow)
	if err := h.writeBlock(&nb); err != nil {
		return 0, err
	}
	if err := h.writeFooter(&nb); err != nil {
		return 0, err
	}
	h.pushFree(&nb)
	h.brkPrevFree = true // nb is free and ends exactly at the new break
	if err := h.carve(&nb, total); err != nil {
		return 0, err
	}
	// First touch of the freshly mapped pages (kernel zero-fill): the
	// dominant term of the paper's Figure 11 malloc curve.
	h.ch.Charge(h.model.ZeroFill(int(total)))
	h.nAlloc++
	return nb.addr + headerSize, nil
}

// carve turns free block b into a live block of total bytes, splitting the
// remainder back onto the free list when big enough.
func (h *Heap) carve(b *block, total uint32) error {
	rem := b.size - total
	if rem >= minBlock {
		r := block{
			addr:     b.addr + Addr(total),
			size:     rem,
			flags:    flagFree,
			prevFree: b.prevFree,
			nextFree: b.nextFree,
		}
		if err := h.writeBlock(&r); err != nil {
			return err
		}
		if err := h.writeFooter(&r); err != nil {
			return err
		}
		if err := h.relink(b, r.addr); err != nil {
			return err
		}
		b.size = total
	} else {
		total = b.size
		if err := h.relink(b, 0); err != nil {
			return err
		}
		if err := h.setPrevFree(b.addr+Addr(b.size), false); err != nil {
			return err
		}
	}
	b.flags &^= flagFree
	b.prevFree, b.nextFree = 0, 0
	return h.writeBlock(b)
}

// relink replaces b by repl (0 = remove) in the free list.
func (h *Heap) relink(b *block, repl Addr) error {
	if b.prevFree == 0 {
		if repl != 0 {
			h.freeHead = repl
		} else {
			h.freeHead = b.nextFree
		}
	} else {
		v := repl
		if v == 0 {
			v = b.nextFree
		}
		if err := h.sp.Store32(b.prevFree+offNextFree, v); err != nil {
			return err
		}
	}
	if b.nextFree != 0 {
		v := repl
		if v == 0 {
			v = b.prevFree
		}
		if err := h.sp.Store32(b.nextFree+offPrevFree, v); err != nil {
			return err
		}
	}
	return nil
}

func (h *Heap) pushFree(b *block) {
	b.prevFree = 0
	b.nextFree = h.freeHead
	if h.freeHead != 0 {
		// Ignore errors: freeHead is always mapped.
		_ = h.sp.Store32(h.freeHead+offPrevFree, b.addr)
	}
	h.freeHead = b.addr
}

func (h *Heap) setPrevFree(at Addr, free bool) error {
	if at >= h.brk {
		h.brkPrevFree = free
		return nil
	}
	fl, err := h.sp.Load32(at + offFlags)
	if err != nil {
		return err
	}
	if free {
		fl |= flagPrevFree
	} else {
		fl &^= flagPrevFree
	}
	return h.sp.Store32(at+offFlags, fl)
}

// Free releases the block at payload address addr, coalescing with free
// neighbours.
func (h *Heap) Free(addr Addr) error {
	if addr < layout.HeapBase+headerSize || addr >= h.brk {
		return fmt.Errorf("heap: free(%#08x) outside heap", addr)
	}
	b, err := h.readBlock(addr - headerSize)
	if err != nil {
		return err
	}
	if b.isFree() {
		return fmt.Errorf("heap: double free at %#08x", addr)
	}
	if b.size < minBlock || b.addr+Addr(b.size) > h.brk {
		return fmt.Errorf("heap: corrupt block at %#08x", addr)
	}
	h.ch.Charge(h.model.Probes(3))
	h.nFree++

	if b.prevIsFree() {
		psz, err := h.sp.Load32(b.addr - 4)
		if err != nil {
			return err
		}
		p, err := h.readBlock(b.addr - Addr(psz))
		if err != nil {
			return err
		}
		if !p.isFree() || p.size != psz {
			return fmt.Errorf("heap: corrupt footer before %#08x", b.addr)
		}
		if err := h.relink(&p, 0); err != nil {
			return err
		}
		p.size += b.size
		b = p
	}
	if nxt := b.addr + Addr(b.size); nxt < h.brk {
		n, err := h.readBlock(nxt)
		if err != nil {
			return err
		}
		if n.isFree() {
			if err := h.relink(&n, 0); err != nil {
				return err
			}
			b.size += n.size
		}
	}
	b.flags |= flagFree
	b.flags &^= flagPrevFree
	h.pushFree(&b)
	if err := h.writeBlock(&b); err != nil {
		return err
	}
	if err := h.writeFooter(&b); err != nil {
		return err
	}
	return h.setPrevFree(b.addr+Addr(b.size), true)
}

// Check validates the heap's structural invariants (tiling, coalescing,
// footer integrity, free-list/physical agreement).
func (h *Heap) Check() error {
	physFree := map[Addr]bool{}
	prevFree := false
	var prevSize uint32
	for at := Addr(layout.HeapBase); at < h.brk; {
		b, err := h.readBlock(at)
		if err != nil {
			return err
		}
		if b.size < minBlock || b.size%8 != 0 || at+Addr(b.size) > h.brk {
			return fmt.Errorf("heap: corrupt block %#08x size %d", at, b.size)
		}
		if b.prevIsFree() != prevFree {
			return fmt.Errorf("heap: block %#08x prev-free flag wrong", at)
		}
		if prevFree {
			foot, err := h.sp.Load32(at - 4)
			if err != nil {
				return err
			}
			if foot != prevSize {
				return fmt.Errorf("heap: bad footer before %#08x", at)
			}
		}
		if b.isFree() {
			if prevFree {
				return fmt.Errorf("heap: adjacent free blocks at %#08x", at)
			}
			physFree[at] = true
			prevFree = true
		} else {
			prevFree = false
		}
		prevSize = b.size
		at += Addr(b.size)
	}
	n := 0
	for at := h.freeHead; at != 0; {
		if n++; n > 1<<20 {
			return fmt.Errorf("heap: free list cycle")
		}
		b, err := h.readBlock(at)
		if err != nil {
			return err
		}
		if !b.isFree() || !physFree[at] {
			return fmt.Errorf("heap: free list block %#08x invalid", at)
		}
		at = b.nextFree
	}
	if n != len(physFree) {
		return fmt.Errorf("heap: free list has %d entries, %d physically free", n, len(physFree))
	}
	return nil
}
