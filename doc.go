// Package repro is a from-scratch Go reproduction of
//
//	Gabriel Antoniu, Luc Bougé, Raymond Namyst.
//	"An Efficient and Transparent Thread Migration Scheme in the PM2
//	Runtime System". IPPS/SPDP RTSPP Workshops, 1999, pp. 496–510.
//
// The public entry point is repro/pm2; the implementation lives under
// internal/ (see DESIGN.md for the system inventory and EXPERIMENTS.md for
// the paper-vs-measured results). The root package carries the repository's
// benchmark suite (bench_test.go), one benchmark per figure, table, and
// in-text measurement of the paper's evaluation.
//
// Beyond the paper, the runtime adds a fail-stop fault-tolerance layer:
// crash injection (pm2.Config.Faults), lease/heartbeat failure detection
// with convoy evacuation and slot reclaim, and cluster checkpoint/restore
// to the digest-sealed pm2ckpt format (pm2load -checkpoint/-restore,
// pm2bench -fig failover). DESIGN.md's failure-model section has the
// details.
package repro

// Version identifies this reproduction.
const Version = "1.0.0"
