// The repository benchmark suite: one benchmark per figure, table and
// in-text measurement of the paper's evaluation (§5), plus the ablations
// from DESIGN.md. Every benchmark reports the virtual-time result of the
// calibrated simulation as a "sim-µs" metric (the number to compare against
// the paper) next to the usual wall-clock ns/op of the harness itself.
//
// Regenerate the full tables with: go run ./cmd/pm2bench -fig all
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pm2"
	"repro/internal/progs"
)

// BenchmarkFig11Small regenerates Figure 11 (top): average allocation time
// for 25–500 KB requests, malloc vs pm2_isomalloc, 2 nodes, round-robin.
func BenchmarkFig11Small(b *testing.B) {
	for _, size := range []uint32{25_000, 100_000, 250_000, 500_000} {
		b.Run(fmt.Sprintf("size=%dKB", size/1000), func(b *testing.B) {
			var rows []bench.Fig11Row
			for i := 0; i < b.N; i++ {
				rows = bench.Fig11([]uint32{size}, 1, 2)
			}
			b.ReportMetric(rows[0].MallocMicros, "malloc-sim-µs")
			b.ReportMetric(rows[0].IsoMicros, "isomalloc-sim-µs")
			b.ReportMetric(rows[0].IsoMicros-rows[0].MallocMicros, "overhead-sim-µs")
		})
	}
}

// BenchmarkFig11Large regenerates Figure 11 (bottom): 1–8 MB requests.
func BenchmarkFig11Large(b *testing.B) {
	for _, mb := range []uint32{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("size=%dMB", mb), func(b *testing.B) {
			var rows []bench.Fig11Row
			for i := 0; i < b.N; i++ {
				rows = bench.Fig11([]uint32{mb << 20}, 1, 2)
			}
			b.ReportMetric(rows[0].MallocMicros, "malloc-sim-µs")
			b.ReportMetric(rows[0].IsoMicros, "isomalloc-sim-µs")
			b.ReportMetric(rows[0].IsoMicros-rows[0].MallocMicros, "overhead-sim-µs")
		})
	}
}

// BenchmarkMigrationPingPong regenerates the §5 headline measurement: a
// thread with no static data migrates across the (simulated) Myrinet in
// less than 75 µs. Allocations are reported: the pooled, borrowed-section
// data path is gated on allocs/op staying down (see EXPERIMENTS.md).
func BenchmarkMigrationPingPong(b *testing.B) {
	b.ReportAllocs()
	var r bench.MigrationResult
	for i := 0; i < b.N; i++ {
		r = bench.MigrationPingPong(50, pm2.Config{})
	}
	b.ReportMetric(r.AvgMicros, "sim-µs/migration")
	b.ReportMetric(r.WorstMicros, "worst-sim-µs")
}

// BenchmarkMigrationPingPongZeroCopy is the same measurement over the
// zero-copy scatter-gather pipeline (Config.Convoy): the NIC gathers the
// thread image from slot memory and scatters it into the installed pages,
// eliminating the pack, NIC and install copies on both sides.
func BenchmarkMigrationPingPongZeroCopy(b *testing.B) {
	b.ReportAllocs()
	var r bench.MigrationResult
	for i := 0; i < b.N; i++ {
		r = bench.MigrationPingPong(50, pm2.Config{Convoy: true})
	}
	b.ReportMetric(r.AvgMicros, "sim-µs/migration")
	b.ReportMetric(r.WorstMicros, "worst-sim-µs")
}

// BenchmarkMigrationConvoy measures the convoy batching win: k threads
// with one-slot payloads moved to one destination in a single balancing
// decision, as one zero-copy convoy versus k individual messages.
func BenchmarkMigrationConvoy(b *testing.B) {
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var rows []bench.ConvoyRow
			for i := 0; i < b.N; i++ {
				rows = bench.MigrationConvoy(64<<10, []int{k})
			}
			b.ReportMetric(rows[0].PerThreadLegacyMicros, "legacy-sim-µs/thread")
			b.ReportMetric(rows[0].PerThreadConvoyMicros, "convoy-sim-µs/thread")
		})
	}
}

// BenchmarkMigrationVsPayload is ablation A5: end-to-end migration cost as
// a function of the isomalloc'd payload the thread carries.
func BenchmarkMigrationVsPayload(b *testing.B) {
	for _, payload := range []uint32{0, 1 << 10, 8 << 10, 32 << 10, 60 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("payload=%dKB", payload/1024), func(b *testing.B) {
			var r bench.MigrationResult
			for i := 0; i < b.N; i++ {
				if payload == 0 {
					r = bench.MigrationPingPong(20, pm2.Config{})
				} else {
					r = bench.MigrationWithPayload(20, payload, pm2.Config{})
				}
			}
			b.ReportMetric(r.AvgMicros, "sim-µs/migration")
			b.ReportMetric(float64(r.BytesOnWire)/float64(r.Hops), "wire-B/hop")
		})
	}
}

// BenchmarkRelocationMigration is the §2 baseline (E13): stack relocation
// with a post-migration fixup pass (compare the paper's Active Threads
// citation of 150 µs per null-thread migration).
func BenchmarkRelocationMigration(b *testing.B) {
	for _, ptrs := range []int{0, 32, 256} {
		b.Run(fmt.Sprintf("regptrs=%d", ptrs), func(b *testing.B) {
			var r bench.MigrationResult
			for i := 0; i < b.N; i++ {
				r = bench.RelocationPingPong(20, ptrs)
			}
			b.ReportMetric(r.AvgMicros, "sim-µs/migration")
		})
	}
}

// BenchmarkNegotiationScaling regenerates the §5 negotiation measurement:
// ≈255 µs on two nodes plus ≈165 µs per extra node.
func BenchmarkNegotiationScaling(b *testing.B) {
	for _, nodes := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var rows []bench.NegotiationRow
			for i := 0; i < b.N; i++ {
				rows = bench.NegotiationScaling([]int{nodes})
			}
			b.ReportMetric(rows[0].Micros, "sim-µs/negotiation")
		})
	}
}

// BenchmarkThreadCreate is E14: thread creation is a purely local
// operation — one slot, no negotiation, whatever the distribution (§4.1).
func BenchmarkThreadCreate(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = bench.ThreadCreate(100, pm2.Config{})
	}
	b.ReportMetric(avg, "sim-µs/create")
}

// BenchmarkAblationSlotCache is A1: the §6 mmapped-slot cache versus cold
// mmap on every thread creation.
func BenchmarkAblationSlotCache(b *testing.B) {
	var rows []bench.CacheRow
	for i := 0; i < b.N; i++ {
		rows = bench.SlotCacheAblation(30)
	}
	for _, r := range rows {
		b.ReportMetric(r.AvgCreateMicros, r.Label+"-sim-µs")
	}
}

// BenchmarkAblationPackMode is A2: used-blocks packing (§6) versus
// whole-slot packing for the Figure 7 list thread.
func BenchmarkAblationPackMode(b *testing.B) {
	var rows []bench.PackRow
	for i := 0; i < b.N; i++ {
		rows = bench.PackModeAblation([]int{1000})
	}
	for _, r := range rows {
		b.ReportMetric(r.AvgMicros, r.Mode+"-sim-µs")
		b.ReportMetric(float64(r.BytesOnWire), r.Mode+"-wire-B")
	}
}

// BenchmarkAblationDistribution is A3: how the initial slot distribution
// decides the multi-slot negotiation rate (§4.1).
func BenchmarkAblationDistribution(b *testing.B) {
	dists := []core.Distribution{core.RoundRobin{}, core.BlockCyclic{K: 8}, core.Partition{}}
	var rows []bench.DistRow
	for i := 0; i < b.N; i++ {
		rows = bench.DistributionAblation(dists, 3, 4)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Negotiations), r.Dist+"-negotiations")
	}
}

// BenchmarkAblationRegisteredPointers is A4: iso-address migration is flat
// in the pointer count; the relocation baseline pays per pointer.
func BenchmarkAblationRegisteredPointers(b *testing.B) {
	var rows []bench.RegPtrRow
	for i := 0; i < b.N; i++ {
		rows = bench.RegisteredPointerAblation([]int{0, 64, 512}, 10)
	}
	for _, r := range rows {
		b.ReportMetric(r.RelocMicros, fmt.Sprintf("reloc-%dptr-sim-µs", r.Pointers))
	}
	b.ReportMetric(rows[0].IsoMicros, "iso-any-ptr-sim-µs")
}

// BenchmarkExtensionRemedies measures the §4.4 remedies: pre-buy and
// global defragmentation versus plain round-robin negotiations.
func BenchmarkExtensionRemedies(b *testing.B) {
	var rows []bench.RemedyRow
	for i := 0; i < b.N; i++ {
		rows = bench.RemediesAblation(6, 4)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Negotiations), r.Remedy+"-negotiations")
	}
}

// BenchmarkFig7ListTraversalMigration runs the full Figure 7 workload (the
// E7 scenario): build, traverse, migrate at element 100, finish remotely.
func BenchmarkFig7ListTraversalMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
		c.Spawn(0, "p4", 1000)
		c.Run(0)
		if c.Stats().Migrations != 1 {
			b.Fatal("expected one migration")
		}
	}
}

// BenchmarkInterpreter measures the raw interpreter throughput (our
// substrate, not a paper number): instructions per second of wall time.
func BenchmarkInterpreter(b *testing.B) {
	c := pm2.New(pm2.Config{Nodes: 1, Quantum: 10_000}, progs.NewImage())
	entry, _ := c.Image().EntryOf("worker")
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c.At(0, func(n *pm2.Node) {
			if _, err := n.Scheduler().Create(entry, 50_000); err != nil {
				b.Fatal(err)
			}
			n.Kick()
		})
		c.Run(0)
	}
	_, _, _, _, instrs = c.Node(0).Scheduler().Stats()
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}
