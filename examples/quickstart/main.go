// Quickstart: the paper's Figure 7/8 scenario through the public API.
//
// A thread on node 0 builds a linked list with pm2_isomalloc, starts
// traversing it, migrates to node 1 at element 100 and finishes the
// traversal there — every pointer still valid, with no post-migration
// processing whatsoever.
//
// Run with:
//
//	go run ./examples/quickstart [elements]
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/pm2"
)

func main() {
	elements := 120
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "usage: quickstart [elements]\n")
			os.Exit(2)
		}
		elements = n
	}

	sys := pm2.NewSystem()
	sys.RegisterExamples() // p1..p4 and friends

	cl := sys.Boot(pm2.Config{Nodes: 2})
	cl.Spawn(0, "p4", uint32(elements))
	cl.Run()

	out := cl.Output()
	// Print the head and tail of the trace like the paper's Figure 8.
	show := func(lines []string) {
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	if len(out) <= 16 {
		show(out)
	} else {
		show(out[:8])
		fmt.Printf("[...]  (%d more lines)\n", len(out)-16)
		show(out[len(out)-8:])
	}

	st := cl.Stats()
	fmt.Println()
	fmt.Printf("virtual time        : %.1f µs\n", st.VirtualMicros)
	fmt.Printf("migrations          : %d (avg %.1f µs, worst %.1f µs)\n",
		st.Migrations, st.AvgMigrationMicros, st.MaxMigrationMicros)
	fmt.Printf("network             : %d messages, %d bytes\n", st.NetworkMessages, st.NetworkBytes)
	if err := cl.Validate(); err != nil {
		fmt.Printf("INVARIANT VIOLATION : %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("invariants          : ok (single slot ownership, no double mapping)\n")
}
