// Loadbalance: the paper's motivating use case (§1–§2) — a generic load
// balancer, implemented outside the application, transparently migrates
// application threads from overloaded to underloaded nodes.
//
// All workers start on node 0 of a 4-node cluster (an irregular-application
// hotspot). The balancer samples loads periodically and preemptively
// migrates threads; the workers never cooperate — each keeps updating a
// private isomalloc'd accumulator through a raw pointer the whole time.
//
// Run with:
//
//	go run ./examples/loadbalance [workers]
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/loadbal"
	"repro/internal/simtime"
	"repro/pm2"
)

func main() {
	workers := 16
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "usage: loadbalance [workers]\n")
			os.Exit(2)
		}
		workers = n
	}
	const nodes = 4

	sys := pm2.NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(pm2.Config{Nodes: nodes})

	for i := 0; i < workers; i++ {
		cl.SpawnWait(0, "worker", 80_000)
	}
	fmt.Printf("spawned %d workers, all on node 0\n", workers)

	bal := loadbal.Attach(cl.Internal(), loadbal.Config{
		Period:           2 * simtime.Millisecond,
		Threshold:        2,
		MaxMovesPerRound: 2,
	})

	// Watch the load spread in virtual time.
	for tick := 0; tick < 8; tick++ {
		cl.RunForMicros(5_000)
		var loads []string
		for i := 0; i < nodes; i++ {
			loads = append(loads, fmt.Sprintf("node%d=%d", i, cl.ThreadsOn(i)))
		}
		fmt.Printf("t=%7.0fµs  loads: %s\n", cl.NowMicros(), strings.Join(loads, " "))
	}
	cl.Run()

	// Where did the workers finish?
	finished := map[string]int{}
	for _, l := range cl.Output() {
		if i := strings.LastIndex(l, "on node "); i >= 0 {
			finished["node "+l[i+8:]]++
		}
	}
	fmt.Println()
	fmt.Printf("balancer: %d rounds, %d migrations requested\n", bal.Rounds(), bal.Moves())
	fmt.Printf("completions by node: %v\n", finished)
	st := cl.Stats()
	fmt.Printf("migrations completed: %d (avg %.1f µs)\n", st.Migrations, st.AvgMigrationMicros)
	if err := cl.Validate(); err != nil {
		fmt.Printf("INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("invariants: ok")
}
