// Pointers: the paper's Figures 1–4 and 9, side by side.
//
// Each scenario runs the corresponding example procedure on a 2-node
// cluster and prints the execution trace, showing which migration scheme
// keeps which kind of pointer valid:
//
//	Fig 1  stack variable            iso-address  -> works
//	Fig 2  pointer to stack data     relocation   -> Segmentation fault
//	       (same program)            iso-address  -> works, no registration
//	Fig 3  registered pointer        relocation   -> works (fixup pass)
//	Fig 4  malloc'd heap data        iso-address  -> Segmentation fault
//	Fig 9  malloc'd linked list      iso-address  -> garbage + fault
//
// Run with:
//
//	go run ./examples/pointers
package main

import (
	"fmt"

	"repro/pm2"
)

func run(title, note, program string, arg uint32, cfg pm2.Config, setup func(*pm2.Cluster)) {
	fmt.Printf("=== %s\n", title)
	fmt.Printf("    %s\n", note)
	sys := pm2.NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(cfg)
	if setup != nil {
		setup(cl)
	}
	cl.Spawn(0, program, arg)
	cl.Run()
	for _, l := range cl.Output() {
		fmt.Printf("    %s\n", l)
	}
	fmt.Println()
}

func main() {
	run("Figure 1: thread migration without pointers",
		"x lives in the stack; the stack migrates at the same address.",
		"p1", 0, pm2.Config{Nodes: 2}, nil)

	run("Figure 2: pointer to stack data, relocation baseline",
		"ptr = &x is never updated; after relocation it points into freed memory.",
		"p2", 0, pm2.Config{Nodes: 2, RelocationPolicy: true}, nil)

	run("Figure 2 program under iso-address migration",
		"the same binary is migration-safe with no annotations at all.",
		"p2", 0, pm2.Config{Nodes: 2}, nil)

	run("Figure 3: registered pointer, relocation baseline",
		"pm2_register_pointer declares ptr; the post-migration pass patches it.",
		"p2r", 0, pm2.Config{Nodes: 2, RelocationPolicy: true}, nil)

	run("Figure 4: malloc'd data does not migrate",
		"t survives in the stack, but t[10] is on the source node's heap.",
		"p3", 0, pm2.Config{Nodes: 2}, nil)

	run("Figure 9: the Figure 7 program with malloc instead of pm2_isomalloc",
		"the list stays behind; node 1 reads stale heap garbage and crashes.",
		"p4m", 300, pm2.Config{Nodes: 2}, func(cl *pm2.Cluster) {
			// Warm node 1's heap with junk, as a long-running
			// process would have.
			cl.Spawn(1, "heapjunk", 64*1024)
			cl.Run()
		})

	fmt.Println("=== Figure 7/8 (the fix): see examples/quickstart")
}
