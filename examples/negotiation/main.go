// Negotiation: the paper's §4.1/§4.4 trade-off — how the initial slot
// distribution decides whether multi-slot allocations stay local or trigger
// the global negotiation protocol.
//
// For each distribution, a thread on node 0 of a 4-node cluster performs a
// series of large pm2_isomalloc calls (2–5 slots each). Round-robin forces a
// negotiation for every multi-slot request ("it behaves rather poorly for
// multi-slot allocations"); block-cyclic keeps runs up to K local; partition
// never negotiates until a node's sub-area runs out.
//
// Run with:
//
//	go run ./examples/negotiation
package main

import (
	"fmt"

	"repro/pm2"
)

// bigalloc performs a sequence of large allocations; sizes are multiples of
// the 64 KB slot so each needs a contiguous run.
const bigalloc = `
.program bigalloc
main:
    enter 8
    store [fp-4], r1     ; how many allocations
    loadi r2, 100000     ; ~2 slots
    store [fp-8], r2
top:
    load  r3, [fp-4]
    loadi r4, 0
    beq   r3, r4, done
    load  r1, [fp-8]
    callb isomalloc
    load  r2, [fp-8]
    addi  r2, r2, 70000  ; grow the next request (~1 more slot)
    store [fp-8], r2
    load  r3, [fp-4]
    addi  r3, r3, -1
    store [fp-4], r3
    br    top
done:
    leave
    halt
`

func main() {
	const allocs = 6
	fmt.Printf("%-18s %13s %14s %16s %14s\n",
		"distribution", "negotiations", "avg cost (µs)", "virtual time(µs)", "net msgs")
	for _, dist := range []string{"round-robin", "block-cyclic:8", "partition"} {
		sys := pm2.NewSystem()
		sys.RegisterExamples()
		sys.MustRegister(bigalloc)
		cl := sys.Boot(pm2.Config{Nodes: 4, Distribution: dist, RecordAllocations: true})
		cl.Spawn(0, "bigalloc", allocs)
		cl.Run()
		st := cl.Stats()
		fmt.Printf("%-18s %13d %14.1f %16.1f %14d\n",
			dist, st.Negotiations, st.AvgNegotiationMicros, st.VirtualMicros, st.NetworkMessages)
		if err := cl.Validate(); err != nil {
			fmt.Printf("INVARIANT VIOLATION under %s: %v\n", dist, err)
		}
	}
	fmt.Println("\n(negotiation = system-wide critical section + bitmap gather + purchase;")
	fmt.Println(" the paper measures ≈255 µs on 2 nodes, +≈165 µs per extra node)")

	// Two remedies the paper sketches in §4.4: over-purchasing during a
	// negotiation, and restructuring the distribution globally.
	fmt.Println("\nremedies for the round-robin worst case:")
	for _, mode := range []string{"pre-buy:8", "defragment-first"} {
		sys := pm2.NewSystem()
		sys.RegisterExamples()
		sys.MustRegister(bigalloc)
		cfg := pm2.Config{Nodes: 4, Distribution: "round-robin"}
		if mode == "pre-buy:8" {
			cfg.PreBuySlots = 8
		}
		cl := sys.Boot(cfg)
		if mode == "defragment-first" {
			cl.Defragment()
		}
		cl.Spawn(0, "bigalloc", allocs)
		cl.Run()
		st := cl.Stats()
		fmt.Printf("  %-18s negotiations=%d  defrags=%d  total=%.1fµs\n",
			mode, st.Negotiations, st.Defragmentations, st.VirtualMicros)
		if err := cl.Validate(); err != nil {
			fmt.Printf("  INVARIANT VIOLATION: %v\n", err)
		}
	}
}
