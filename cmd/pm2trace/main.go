// pm2trace runs a program on a simulated cluster and dumps detailed
// runtime information: the execution trace with virtual timestamps, the
// per-node slot-layer statistics, and the cluster-wide measurements. It is
// the debugging companion to pm2load.
//
// Usage:
//
//	pm2trace [flags] <program> [arg]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	ipm2 "repro/internal/pm2"
	"repro/internal/progs"
	"repro/pm2"
)

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	node := flag.Int("node", 0, "starting node")
	dist := flag.String("dist", "round-robin", "slot distribution")
	live := flag.Bool("live", false, "print trace lines as they are produced")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pm2trace [flags] <program> [arg]")
		os.Exit(2)
	}
	prog := flag.Arg(0)
	arg := uint32(0)
	if flag.NArg() > 1 {
		v, err := strconv.ParseUint(flag.Arg(1), 0, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2trace: bad arg: %v\n", err)
			os.Exit(2)
		}
		arg = uint32(v)
	}

	d, err := pm2.ParseDistribution(*dist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(2)
	}
	c := ipm2.New(ipm2.Config{Nodes: *nodes, Dist: d, RecordAllocs: true}, progs.NewImage())
	if *live {
		c.Trace().SetWriter(os.Stdout)
	}
	c.Spawn(*node, prog, arg)
	c.Run(0)

	if !*live {
		for _, l := range c.Trace().Lines() {
			fmt.Println(l)
		}
	}

	fmt.Printf("\n== run summary (virtual time %.1f µs, %d engine events)\n",
		c.Now().Micros(), c.Engine().Steps())
	st := c.Stats()
	fmt.Printf("migrations:   %d\n", st.Migrations)
	for i, l := range st.MigrationLatencies {
		fmt.Printf("  #%d: %v\n", i+1, l)
	}
	fmt.Printf("negotiations: %d\n", st.Negotiations)
	for i, l := range st.NegotiationLatencies {
		fmt.Printf("  #%d: %v\n", i+1, l)
	}
	fmt.Printf("network:      %d messages, %d bytes\n", st.Net.Messages, st.Net.Bytes)

	fmt.Printf("\n== per-node state\n")
	for i := 0; i < c.Nodes(); i++ {
		n := c.Node(i)
		ss := n.Slots().Stats()
		created, finished, faulted, dispatches, instrs := n.Scheduler().Stats()
		fmt.Printf("node %d: slots owned %5d (cached %d)  acquires %3d  releases %3d  mmaps %3d  cache-hits %3d\n",
			i, n.Slots().OwnedFree(), n.Slots().CachedSlots(),
			ss.Acquired, ss.Released, ss.Mmaps, ss.CacheHits)
		fmt.Printf("         threads: created %d finished %d faulted %d; %d dispatches, %d instructions\n",
			created, finished, faulted, dispatches, instrs)
		fmt.Printf("         memory: %d bytes mapped; heap brk +%d KB; malloc/free %s\n",
			n.Space().MappedBytes(), (n.Heap().Brk()-0x0200_0000)/1024, heapCounts(n))
	}

	if samples := c.AllocSamples(); len(samples) > 0 {
		fmt.Printf("\n== allocations (%d)\n", len(samples))
		show := samples
		if len(show) > 12 {
			show = samples[:12]
		}
		for _, s := range show {
			kind := "malloc   "
			if s.Iso {
				kind = "isomalloc"
			}
			fmt.Printf("  node%d %s %8d B  %10v  ok=%v\n", s.Node, kind, s.Size, s.Latency, s.OK)
		}
		if len(samples) > len(show) {
			fmt.Printf("  ... %d more\n", len(samples)-len(show))
		}
	}

	if err := c.CheckInvariants(); err != nil {
		fmt.Printf("\nINVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ninvariants: ok\n")
}

func heapCounts(n *ipm2.Node) string {
	a, f := n.Heap().Counts()
	return fmt.Sprintf("%d/%d", a, f)
}
