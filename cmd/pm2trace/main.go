// pm2trace runs a program on a simulated cluster and dumps detailed
// runtime information: the execution trace with virtual timestamps, the
// per-node slot-layer statistics, and the cluster-wide measurements. It is
// the debugging companion to pm2load.
//
// Usage:
//
//	pm2trace [flags] <program> [arg]
//	pm2trace record [flags] -o <file>   # record a serving workload trace
//	pm2trace replay [flags] -i <file>   # replay it byte-identically
//
// record -checkpoint <ckpt> binds the trace to a pm2ckpt image (its
// digest lands in the v2 trace header); replay of such a trace requires
// -checkpoint with the same image and continues it from its captured
// instant instead of a fresh boot.
//
// -fault installs a fault plan (crash / partition / slow events) and
// drives millisecond heartbeat rounds past its horizon; -rpc-timeout
// arms the partial-failure deadline layer ("auto" or µs). The summary
// then reports RPC timeouts, suspicions, rejoins and evacuations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/fault"
	ipm2 "repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/scenario"
	"repro/internal/scenario/serve"
	"repro/internal/simtime"
	"repro/pm2"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			recordCmd(os.Args[2:])
			return
		case "replay":
			replayCmd(os.Args[2:])
			return
		}
	}
	nodes := flag.Int("nodes", 2, "cluster size")
	node := flag.Int("node", 0, "starting node")
	dist := flag.String("dist", "round-robin", "slot distribution")
	live := flag.Bool("live", false, "print trace lines as they are produced")
	faultSpec := flag.String("fault", "", `fault plan, e.g. "crash:1@3000", "partition:1-0@3000..9000;slow:1x4@0..5000"`)
	rpcTimeout := flag.String("rpc-timeout", "", `protocol deadline: "auto" = derive from the cost model, an integer = µs of virtual time, "" = off`)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pm2trace [flags] <program> [arg]")
		os.Exit(2)
	}
	prog := flag.Arg(0)
	arg := uint32(0)
	if flag.NArg() > 1 {
		v, err := strconv.ParseUint(flag.Arg(1), 0, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2trace: bad arg: %v\n", err)
			os.Exit(2)
		}
		arg = uint32(v)
	}

	d, err := pm2.ParseDistribution(*dist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(2)
	}
	var timeout simtime.Time
	switch *rpcTimeout {
	case "":
	case "auto":
		timeout = -1
	default:
		v, err := strconv.ParseInt(*rpcTimeout, 10, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "pm2trace: bad -rpc-timeout %q (want \"auto\" or a positive µs count)\n", *rpcTimeout)
			os.Exit(2)
		}
		timeout = simtime.Time(v) * simtime.Microsecond
	}
	var plan *fault.Plan
	if *faultSpec != "" {
		plan, err = fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
			os.Exit(2)
		}
	}
	c := ipm2.New(ipm2.Config{Nodes: *nodes, Dist: d, RecordAllocs: true, Faults: plan, RPCTimeout: timeout}, progs.NewImage())
	if *live {
		c.Trace().SetWriter(os.Stdout)
	}
	if plan != nil {
		// Failure detection rides heartbeat rounds pm2trace has no
		// balancer to drive: tick every millisecond until two rounds past
		// the plan's last event, enough to declare any crash and clear
		// any healed suspicion.
		var horizon simtime.Time
		for _, ev := range plan.Events {
			if ev.At > horizon {
				horizon = ev.At
			}
			if ev.Until > horizon {
				horizon = ev.Until
			}
		}
		for t := simtime.Millisecond; t <= horizon+2*simtime.Millisecond; t += simtime.Millisecond {
			c.Engine().At(t, c.HeartbeatTick)
		}
	}
	c.Spawn(*node, prog, arg)
	c.Run(0)

	if !*live {
		for _, l := range c.Trace().Lines() {
			fmt.Println(l)
		}
	}

	fmt.Printf("\n== run summary (virtual time %.1f µs, %d engine events)\n",
		c.Now().Micros(), c.Engine().Steps())
	st := c.Stats()
	fmt.Printf("migrations:   %d\n", st.Migrations)
	for i, l := range st.MigrationLatencies {
		fmt.Printf("  #%d: %v\n", i+1, l)
	}
	fmt.Printf("negotiations: %d\n", st.Negotiations)
	for i, l := range st.NegotiationLatencies {
		fmt.Printf("  #%d: %v\n", i+1, l)
	}
	fmt.Printf("network:      %d messages, %d bytes\n", st.Net.Messages, st.Net.Bytes)
	if *faultSpec != "" || *rpcTimeout != "" {
		fmt.Printf("faults:       %d rpc timeout(s), %d suspicion(s), %d rejoin(s), %d evacuation(s)\n",
			st.RPCTimeouts, st.Suspicions, st.Rejoins, st.Evacuations)
	}

	fmt.Printf("\n== per-node state\n")
	for i := 0; i < c.Nodes(); i++ {
		n := c.Node(i)
		ss := n.Slots().Stats()
		created, finished, faulted, dispatches, instrs := n.Scheduler().Stats()
		fmt.Printf("node %d: slots owned %5d (cached %d)  acquires %3d  releases %3d  mmaps %3d  cache-hits %3d\n",
			i, n.Slots().OwnedFree(), n.Slots().CachedSlots(),
			ss.Acquired, ss.Released, ss.Mmaps, ss.CacheHits)
		fmt.Printf("         threads: created %d finished %d faulted %d; %d dispatches, %d instructions\n",
			created, finished, faulted, dispatches, instrs)
		fmt.Printf("         memory: %d bytes mapped; heap brk +%d KB; malloc/free %s\n",
			n.Space().MappedBytes(), (n.Heap().Brk()-0x0200_0000)/1024, heapCounts(n))
	}

	if samples := c.AllocSamples(); len(samples) > 0 {
		fmt.Printf("\n== allocations (%d)\n", len(samples))
		show := samples
		if len(show) > 12 {
			show = samples[:12]
		}
		for _, s := range show {
			kind := "malloc   "
			if s.Iso {
				kind = "isomalloc"
			}
			fmt.Printf("  node%d %s %8d B  %10v  ok=%v\n", s.Node, kind, s.Size, s.Latency, s.OK)
		}
		if len(samples) > len(show) {
			fmt.Printf("  ... %d more\n", len(samples)-len(show))
		}
	}

	if err := c.CheckInvariants(); err != nil {
		fmt.Printf("\nINVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ninvariants: ok\n")
}

func heapCounts(n *ipm2.Node) string {
	a, f := n.Heap().Counts()
	return fmt.Sprintf("%d/%d", a, f)
}

// loadCheckpoint reads and decodes a pm2ckpt file, exiting with a
// diagnostic on any failure — shared by record (digest binding) and
// replay (restore source).
func loadCheckpoint(path string) *ipm2.Checkpoint {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	ck, err := ipm2.DecodeCheckpoint(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %s: %v\n", path, err)
		os.Exit(1)
	}
	return ck
}

// recordCmd synthesizes the derived serving workload and writes it as a
// versioned trace file: the harness parameters plus the fully-expanded
// request stream, digest-sealed. The file is self-contained — replaying
// it never re-synthesizes, so it stays byte-identical even if the
// generator defaults change later.
func recordCmd(args []string) {
	fs := flag.NewFlagSet("pm2trace record", flag.ExitOnError)
	out := fs.String("o", "", "output trace file (required)")
	nodes := fs.Int("nodes", 4, "cluster size")
	seed := fs.Uint64("seed", 1, "workload seed")
	pol := fs.String("policy", "", "placement policy (default negotiation)")
	gather := fs.String("gather", "", "bitmap-gather strategy (default sequential)")
	arbiter := fs.String("arbiter", "", "negotiation arbiter (default global)")
	scale := fs.Float64("scale", 1, "arrival-rate multiplier")
	ckpt := fs.String("checkpoint", "", "pm2ckpt file the trace continues from (binds its digest into the header)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: pm2trace record -o <file> [-nodes n] [-seed s] [-policy p] [-gather g] [-arbiter a] [-scale x] [-checkpoint f]")
		os.Exit(2)
	}

	// Canonicalize the harness parameters exactly as a live run would,
	// so the recorded header matches the replayed run's trace header.
	polName, err := pm2.ParsePolicy(*pol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(2)
	}
	gatherName, err := pm2.ParseGather(*gather)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(2)
	}
	arbiterName, err := pm2.ParseArbiter(*arbiter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(2)
	}

	sp := serve.DeriveSpec(*seed, *nodes)
	sp.RateScale = *scale
	reqs, err := sp.Synthesize(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	tr := &serve.Trace{
		Policy:   polName,
		Nodes:    *nodes,
		Seed:     sp.Seed,
		Gather:   gatherName,
		Arbiter:  arbiterName,
		Requests: reqs,
	}
	if *ckpt != "" {
		ck := loadCheckpoint(*ckpt)
		if ck.Nodes != *nodes {
			fmt.Fprintf(os.Stderr, "pm2trace: checkpoint has %d nodes, recording asks for %d\n", ck.Nodes, *nodes)
			os.Exit(2)
		}
		tr.CkptDigest = ck.Digest()
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	if err := tr.Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d requests to %s (digest %016x)\n", len(tr.Requests), *out, tr.Digest())
}

// replayCmd re-runs a recorded serving trace through the harness —
// digest-verified on decode — and prints the canonical run trace plus
// the per-cohort SLO summary. Two replays of the same file, and a
// replay versus the live run it was recorded from, are byte-identical.
func replayCmd(args []string) {
	fs := flag.NewFlagSet("pm2trace replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	ckpt := fs.String("checkpoint", "", "pm2ckpt file to restore before replaying (required when the trace was recorded against one)")
	quiet := fs.Bool("q", false, "suppress the canonical run trace, print only the SLO summary")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: pm2trace replay -i <file> [-checkpoint f] [-q]")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	tr, err := serve.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}

	spec := scenario.Spec{
		Policy:  tr.Policy,
		Nodes:   tr.Nodes,
		Seed:    tr.Seed,
		Gather:  tr.Gather,
		Arbiter: tr.Arbiter,
	}
	var res *scenario.Result
	switch {
	case tr.CkptDigest != 0:
		// The trace is bound to a checkpoint image: replay must continue
		// that exact capture, so the digest recorded at record time has
		// to match the image presented now.
		if *ckpt == "" {
			fmt.Fprintf(os.Stderr, "pm2trace: trace %s was recorded against checkpoint %016x; pass it with -checkpoint\n", *in, tr.CkptDigest)
			os.Exit(2)
		}
		ck := loadCheckpoint(*ckpt)
		if got := ck.Digest(); got != tr.CkptDigest {
			fmt.Fprintf(os.Stderr, "pm2trace: checkpoint digest mismatch: trace wants %016x, %s is %016x\n", tr.CkptDigest, *ckpt, got)
			os.Exit(1)
		}
		res, err = scenario.ReplayFromCheckpoint(spec, tr.Requests, ck)
	case *ckpt != "":
		fmt.Fprintf(os.Stderr, "pm2trace: trace %s replays on a fresh boot; -checkpoint does not apply\n", *in)
		os.Exit(2)
	default:
		res, err = scenario.Replay(spec, tr.Requests)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: %v\n", err)
		os.Exit(1)
	}
	if err := res.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "pm2trace: replay failed verification: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(res.TraceString())
	}
	fmt.Printf("\n== replay summary (%d requests, virtual time %.1f µs)\n", len(tr.Requests), res.VirtualMicros)
	fmt.Printf("%-8s %8s %12s %12s %12s %12s\n",
		"cohort", "requests", "place p50µs", "place p99µs", "e2e p50µs", "e2e p99µs")
	for _, s := range res.CohortSLOs() {
		fmt.Printf("%-8s %8d %12.1f %12.1f %12.1f %12.1f\n",
			s.Cohort, s.Requests, s.Placement.P50, s.Placement.P99, s.EndToEnd.P50, s.EndToEnd.P99)
	}
}
