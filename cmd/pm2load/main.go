// pm2load runs a registered program on a simulated PM2 cluster and prints
// its execution trace, like the paper's pm2load launcher ("info% pm2load
// example1" in Figure 8).
//
// Usage:
//
//	pm2load [flags] <program> [arg]
//
// Programs: p1 p2 p2r p3 p4 p4m worker pingpong heapjunk allocone
// (or a custom program assembled from -src file).
//
// Examples:
//
//	pm2load p4 1000                          # Figure 7/8
//	pm2load -mech relocate p2                # Figure 2
//	pm2load -warm-heap 65536 p4m 300         # Figure 9
//	pm2load -policy round-robin -balance 2000 -nodes 4 p4 1000
//	pm2load -gather delta -arbiter sharded -nodes 16 allocone 150000
//
// -policy selects the placement policy (negotiation | round-robin |
// work-stealing); -mech selects the migration mechanism (iso |
// relocate); -gather the §4.4 bitmap-gather strategy (sequential |
// batched | tree | delta); -arbiter the negotiation concurrency scheme
// (global | sharded | optimistic). For compatibility, -policy also
// accepts the legacy values "iso" and "relocate" and treats them as
// -mech.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/pm2"
)

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	policy := flag.String("policy", "", "placement policy: "+strings.Join(pm2.PolicyNames(), " | "))
	mech := flag.String("mech", "iso", `migration mechanism: "iso" or "relocate"`)
	balance := flag.Int64("balance", 0, "attach a load balancer with this period in virtual µs (0 = off)")
	gather := flag.String("gather", "", "negotiation bitmap-gather strategy: "+strings.Join(pm2.GatherNames(), " | "))
	arbiter := flag.String("arbiter", "", "negotiation arbiter: "+strings.Join(pm2.ArbiterNames(), " | "))
	dist := flag.String("dist", "round-robin", `slot distribution: round-robin | block-cyclic:K | partition`)
	convoy := flag.Bool("convoy", false, "zero-copy scatter-gather migration pipeline with thread convoys")
	node := flag.Int("node", 0, "node to start the program on")
	srcFile := flag.String("src", "", "assemble and register an extra program from this file")
	warmHeap := flag.Int("warm-heap", 0, "fill every other node's heap with N bytes of junk first (Figure 9)")
	stats := flag.Bool("stats", true, "print run statistics after the trace")
	flag.Parse()

	// Legacy spelling: -policy iso|relocate named the mechanism.
	if *policy == "iso" || *policy == "relocate" {
		mechSet := false
		flag.Visit(func(f *flag.Flag) { mechSet = mechSet || f.Name == "mech" })
		if mechSet && *mech != *policy {
			fmt.Fprintf(os.Stderr, "pm2load: -policy %s conflicts with -mech %s (use -mech for the mechanism, -policy for placement)\n", *policy, *mech)
			os.Exit(2)
		}
		*mech = *policy
		*policy = ""
	}
	polName, err := pm2.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}
	if *mech != "iso" && *mech != "relocate" {
		fmt.Fprintf(os.Stderr, "pm2load: unknown mechanism %q (want iso or relocate)\n", *mech)
		os.Exit(2)
	}
	gatherName, err := pm2.ParseGather(*gather)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}
	arbiterName, err := pm2.ParseArbiter(*arbiter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pm2load [flags] <program> [arg]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prog := flag.Arg(0)
	arg := uint32(0)
	if flag.NArg() > 1 {
		v, err := strconv.ParseUint(flag.Arg(1), 0, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: bad argument %q: %v\n", flag.Arg(1), err)
			os.Exit(2)
		}
		arg = uint32(v)
	}

	sys := pm2.NewSystem()
	sys.RegisterExamples()
	if *srcFile != "" {
		src, err := os.ReadFile(*srcFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
			os.Exit(1)
		}
		if err := sys.Register(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
			os.Exit(1)
		}
	}

	cl := sys.Boot(pm2.Config{
		Nodes:            *nodes,
		Distribution:     *dist,
		RelocationPolicy: *mech == "relocate",
		Policy:           polName,
		Gather:           gatherName,
		Arbiter:          arbiterName,
		Convoy:           *convoy,
	})
	if *balance > 0 {
		cl.AttachBalancer(*balance)
	}

	if *warmHeap > 0 {
		for i := 0; i < *nodes; i++ {
			if i != *node {
				cl.Spawn(i, "heapjunk", uint32(*warmHeap))
			}
		}
		cl.Run()
	}

	cl.Spawn(*node, prog, arg)
	cl.Run()

	for _, l := range cl.Output() {
		fmt.Println(l)
	}
	if *stats {
		st := cl.Stats()
		fmt.Fprintf(os.Stderr, "\n-- %d node(s), policy %s, mech %s, dist %s, gather %s, arbiter %s\n", *nodes, polName, *mech, *dist, gatherName, arbiterName)
		fmt.Fprintf(os.Stderr, "-- virtual time %.1fµs, %d migration(s) (avg %.1fµs), %d negotiation(s)\n",
			st.VirtualMicros, st.Migrations, st.AvgMigrationMicros, st.Negotiations)
	}
	if err := cl.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: invariant violation: %v\n", err)
		os.Exit(1)
	}
}
