// pm2load runs a registered program on a simulated PM2 cluster and prints
// its execution trace, like the paper's pm2load launcher ("info% pm2load
// example1" in Figure 8).
//
// Usage:
//
//	pm2load [flags] <program> [arg]
//
// Programs: p1 p2 p2r p3 p4 p4m worker pingpong heapjunk allocone
// (or a custom program assembled from -src file).
//
// Examples:
//
//	pm2load p4 1000                          # Figure 7/8
//	pm2load -mech relocate p2                # Figure 2
//	pm2load -warm-heap 65536 p4m 300         # Figure 9
//	pm2load -policy round-robin -balance 2000 -nodes 4 p4 1000
//	pm2load -gather delta -arbiter sharded -nodes 16 allocone 150000
//	pm2load -nodes 4 -fault crash:1@3000 -node 1 worker 30000
//	pm2load -nodes 4 -fault "partition:1-0@3000..9000;partition:1-2@3000..9000;partition:1-3@3000..9000" \
//	        -rpc-timeout auto allocone 150000
//	pm2load -checkpoint run.ckpt -checkpoint-at 500 p4 1000
//	pm2load -checkpoint run.ckpt -checkpoint-at 500 -balance 2000 p4 1000
//	pm2load -restore run.ckpt
//
// -policy selects the placement policy (negotiation | round-robin |
// work-stealing); -mech selects the migration mechanism (iso |
// relocate); -gather the §4.4 bitmap-gather strategy (sequential |
// batched | tree | delta); -arbiter the negotiation concurrency scheme
// (global | sharded | optimistic). For compatibility, -policy also
// accepts the legacy values "iso" and "relocate" and treats them as
// -mech.
//
// -fault installs a fault plan: "crash:N@T" crashes node N at T µs of
// virtual time, "partition:A-B@T1..T2" cuts the A↔B link for the window
// (store-and-forward healing), "slow:NxF@T1..T2" multiplies node N's
// wire time by F; events compose with ";". If no -balance is given one
// is attached at 2000 µs, since failure detection rides the balancer's
// heartbeat rounds. -rpc-timeout arms the partial-failure deadline
// layer ("auto" derives it from the cost model, an integer sets it in
// µs): timed-out protocol waits retry or fail gracefully, and detection
// becomes suspicion-based — a live partitioned node is routed around,
// never evacuated, and rejoins on heal. -checkpoint/-checkpoint-at
// capture the cluster to a pm2ckpt file mid-run and continue (an
// attached balancer's round state rides along in a v2 section);
// -restore boots from such a file and runs it to completion, printing a
// trace byte-identical to the capturing run's (the checkpoint carries
// configuration and workload, so -restore takes no program argument and
// rejects structural flags).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/pm2"
)

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	policy := flag.String("policy", "", "placement policy: "+strings.Join(pm2.PolicyNames(), " | "))
	mech := flag.String("mech", "iso", `migration mechanism: "iso" or "relocate"`)
	balance := flag.Int64("balance", 0, "attach a load balancer with this period in virtual µs (0 = off)")
	gather := flag.String("gather", "", "negotiation bitmap-gather strategy: "+strings.Join(pm2.GatherNames(), " | "))
	arbiter := flag.String("arbiter", "", "negotiation arbiter: "+strings.Join(pm2.ArbiterNames(), " | "))
	dist := flag.String("dist", "round-robin", `slot distribution: round-robin | block-cyclic:K | partition`)
	convoy := flag.Bool("convoy", false, "zero-copy scatter-gather migration pipeline with thread convoys")
	node := flag.Int("node", 0, "node to start the program on")
	srcFile := flag.String("src", "", "assemble and register an extra program from this file")
	warmHeap := flag.Int("warm-heap", 0, "fill every other node's heap with N bytes of junk first (Figure 9)")
	stats := flag.Bool("stats", true, "print run statistics after the trace")
	faultSpec := flag.String("fault", "", `fault plan, e.g. "crash:1@3000", "partition:1-0@3000..9000;slow:2x4@0..5000"`)
	hbMisses := flag.Int("heartbeat-misses", 0, "failure-detector lease: heartbeat rounds missed before a node is declared dead (0 = default 2)")
	rpcTimeout := flag.String("rpc-timeout", "", `protocol deadline: "auto" = derive from the cost model, an integer = µs of virtual time, "" = off`)
	ckptFile := flag.String("checkpoint", "", "write a pm2ckpt image of the run to this file at -checkpoint-at, then continue")
	ckptAt := flag.Int64("checkpoint-at", 0, "µs of virtual time to run before -checkpoint captures the cluster")
	restoreFile := flag.String("restore", "", "restore a pm2ckpt image and run it to completion (no program argument)")
	flag.Parse()

	if *restoreFile != "" {
		// A checkpoint carries its whole structural configuration and
		// workload; flags that would re-specify either are mistakes, not
		// requests.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "restore", "balance", "stats":
			default:
				fmt.Fprintf(os.Stderr, "pm2load: -%s does not apply with -restore (the checkpoint carries the configuration and workload)\n", f.Name)
				os.Exit(2)
			}
		})
		restoreRun(*restoreFile, *balance, *stats)
		return
	}
	if *ckptFile != "" {
		switch {
		case *ckptAt <= 0:
			fmt.Fprintln(os.Stderr, "pm2load: -checkpoint needs -checkpoint-at <µs> to know when to capture")
			os.Exit(2)
		case *faultSpec != "":
			fmt.Fprintln(os.Stderr, "pm2load: -checkpoint does not compose with -fault (crash barriers are scheduled closures a checkpoint cannot carry)")
			os.Exit(2)
		}
	}
	// Failure detection rides the balancer's heartbeat rounds: a fault
	// plan without a balancer would crash the node and then never notice.
	if *faultSpec != "" && *balance == 0 {
		*balance = 2000
	}

	// Legacy spelling: -policy iso|relocate named the mechanism.
	if *policy == "iso" || *policy == "relocate" {
		mechSet := false
		flag.Visit(func(f *flag.Flag) { mechSet = mechSet || f.Name == "mech" })
		if mechSet && *mech != *policy {
			fmt.Fprintf(os.Stderr, "pm2load: -policy %s conflicts with -mech %s (use -mech for the mechanism, -policy for placement)\n", *policy, *mech)
			os.Exit(2)
		}
		*mech = *policy
		*policy = ""
	}
	polName, err := pm2.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}
	if *mech != "iso" && *mech != "relocate" {
		fmt.Fprintf(os.Stderr, "pm2load: unknown mechanism %q (want iso or relocate)\n", *mech)
		os.Exit(2)
	}
	gatherName, err := pm2.ParseGather(*gather)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}
	arbiterName, err := pm2.ParseArbiter(*arbiter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(2)
	}
	var rpcTimeoutMicros int64
	switch *rpcTimeout {
	case "":
	case "auto":
		rpcTimeoutMicros = -1
	default:
		v, err := strconv.ParseInt(*rpcTimeout, 10, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "pm2load: bad -rpc-timeout %q (want \"auto\" or a positive µs count)\n", *rpcTimeout)
			os.Exit(2)
		}
		rpcTimeoutMicros = v
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pm2load [flags] <program> [arg]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prog := flag.Arg(0)
	arg := uint32(0)
	if flag.NArg() > 1 {
		v, err := strconv.ParseUint(flag.Arg(1), 0, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: bad argument %q: %v\n", flag.Arg(1), err)
			os.Exit(2)
		}
		arg = uint32(v)
	}

	sys := pm2.NewSystem()
	sys.RegisterExamples()
	if *srcFile != "" {
		src, err := os.ReadFile(*srcFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
			os.Exit(1)
		}
		if err := sys.Register(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
			os.Exit(1)
		}
	}

	cl := sys.Boot(pm2.Config{
		Nodes:            *nodes,
		Distribution:     *dist,
		RelocationPolicy: *mech == "relocate",
		Policy:           polName,
		Gather:           gatherName,
		Arbiter:          arbiterName,
		Convoy:           *convoy,
		Faults:           *faultSpec,
		HeartbeatMisses:  *hbMisses,
		RPCTimeoutMicros: rpcTimeoutMicros,
	})
	if *balance > 0 {
		cl.AttachBalancer(*balance)
	}

	if *warmHeap > 0 {
		for i := 0; i < *nodes; i++ {
			if i != *node {
				cl.Spawn(i, "heapjunk", uint32(*warmHeap))
			}
		}
		cl.Run()
	}

	cl.Spawn(*node, prog, arg)
	if *ckptFile != "" {
		// Run to the capture instant, write the image, then resume the
		// same cluster: the full trace printed below is byte-identical to
		// what `-restore` produces from the written file.
		cl.RunForMicros(*ckptAt)
		data, err := cl.CheckpointBytes()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: checkpoint: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ckptFile, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "-- checkpoint: %d bytes to %s at t=%dµs\n", len(data), *ckptFile, *ckptAt)
		cl.Resume()
	}
	cl.Run()

	for _, l := range cl.Output() {
		fmt.Println(l)
	}
	if *stats {
		st := cl.Stats()
		fmt.Fprintf(os.Stderr, "\n-- %d node(s), policy %s, mech %s, dist %s, gather %s, arbiter %s\n", *nodes, polName, *mech, *dist, gatherName, arbiterName)
		fmt.Fprintf(os.Stderr, "-- virtual time %.1fµs, %d migration(s) (avg %.1fµs), %d negotiation(s)\n",
			st.VirtualMicros, st.Migrations, st.AvgMigrationMicros, st.Negotiations)
	}
	if err := cl.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: invariant violation: %v\n", err)
		os.Exit(1)
	}
}

// restoreRun boots a cluster from a pm2ckpt image and runs it to
// completion. The checkpoint carries the structural configuration and
// the parked workload, so the only inputs are the file and the optional
// balancer period. The printed trace includes the pre-capture lines the
// checkpoint recorded — it is byte-identical to the capturing run's.
func restoreRun(path string, balance int64, stats bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %v\n", err)
		os.Exit(1)
	}
	sys := pm2.NewSystem()
	sys.RegisterExamples()
	cl, err := sys.Restore(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: %s: %v\n", path, err)
		os.Exit(1)
	}
	if balance > 0 {
		cl.AttachBalancer(balance)
	}
	cl.Run()
	for _, l := range cl.Output() {
		fmt.Println(l)
	}
	if stats {
		st := cl.Stats()
		fmt.Fprintf(os.Stderr, "\n-- restored from %s\n", path)
		fmt.Fprintf(os.Stderr, "-- virtual time %.1fµs, %d migration(s) (avg %.1fµs), %d negotiation(s)\n",
			st.VirtualMicros, st.Migrations, st.AvgMigrationMicros, st.Negotiations)
	}
	if err := cl.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "pm2load: invariant violation: %v\n", err)
		os.Exit(1)
	}
}
