// benchcheck is the CI perf-regression gate: it compares freshly
// generated pm2bench -json reports against their committed baselines and
// exits non-zero on a regression beyond tolerance (default 25%).
//
// Six reports are gated. BENCH_negotiation.json: any gather strategy's
// cold or warm per-node slope. BENCH_migration.json: the ping-pong
// migration µs/hop (legacy and zero-copy pipeline) and the convoy path's
// per-thread µs and wire bytes/thread at each measured batch size.
// BENCH_serve.json: each cluster size's saturation knee — gated as a
// FLOOR, a knee that falls below baseline is lost serving capacity.
// BENCH_failover.json: the crash-to-declaration detection latency and
// the evacuation makespan at each measured victim batch size.
// BENCH_partition.json: the live-partition figure — rejoin latency and
// RPC-timeout counts gated exactly (deterministic protocol quantities),
// negotiation makespans within tolerance.
// BENCH_scale.json: the kernel-scaling figure's virtual quantities
// (events, migrations, virtual time per cluster size) — gated EXACTLY,
// no tolerance: they are deterministic event counts, so any drift is a
// kernel behavior change, not measurement noise. Its wall-clock columns
// measure the CI machine and are never gated.
//
// Usage:
//
//	benchcheck -baseline ci/BENCH_negotiation.baseline.json -current BENCH_negotiation.json \
//	           -mig-baseline ci/BENCH_migration.baseline.json -mig-current BENCH_migration.json \
//	           -serve-baseline ci/BENCH_serve.baseline.json -serve-current BENCH_serve.json \
//	           -scale-baseline ci/BENCH_scale.baseline.json -scale-current BENCH_scale.json
//	benchcheck -tolerance 0.10 ...   # tighten the gate to 10%
//	benchcheck -mig-current ""       # skip the migration gate
//	benchcheck -serve-current ""     # skip the serve gate
//	benchcheck -failover-current ""  # skip the failover gate
//	benchcheck -partition-current "" # skip the partition gate
//	benchcheck -scale-current ""     # skip the scale gate
//
// Merged-byte counts are reported for context but not gated: they are
// exact protocol quantities already pinned by unit tests, while the
// slopes summarize the virtual-time cost model end to end. A small
// absolute grace (0.5 µs/node for slopes, 1 µs for latencies) keeps
// near-zero figures from tripping the relative gate on rounding noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

// slopeGraceMicros is the absolute slack added on top of the relative
// tolerance, so slopes measured in single-digit µs/node are not failed
// by sub-µs jitter in the cost accounting.
const slopeGraceMicros = 0.5

// latencyGraceMicros is the absolute slack of the migration latency gate.
const latencyGraceMicros = 1.0

func loadJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func loadNegotiation(path string) (bench.NegotiationReport, error) {
	var r bench.NegotiationReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "negotiation" || len(r.Gathers) == 0 {
		return r, fmt.Errorf("%s: not a negotiation report", path)
	}
	return r, nil
}

func loadMigration(path string) (bench.MigrationReport, error) {
	var r bench.MigrationReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "migration" || len(r.Convoy) == 0 {
		return r, fmt.Errorf("%s: not a migration report", path)
	}
	return r, nil
}

// gate accumulates check results; check prints one line per figure and
// records whether any figure exceeded its limit.
type gate struct {
	tolerance float64
	failed    bool
}

func (g *gate) check(label, unit string, grace, baseVal, curVal float64) {
	limit := baseVal*(1+g.tolerance) + grace
	status := "ok"
	if curVal > limit {
		status = "REGRESSED"
		g.failed = true
	}
	fmt.Printf("%-34s %10.1f %s (baseline %10.1f, limit %10.1f)  %s\n",
		label, curVal, unit, baseVal, limit, status)
}

// checkFloor is check with the inequality flipped: the figure is a
// capacity (higher is better), so falling below baseline minus
// tolerance is the regression. Used for the serving knee.
func (g *gate) checkFloor(label, unit string, grace, baseVal, curVal float64) {
	limit := baseVal*(1-g.tolerance) - grace
	if limit < 0 {
		limit = 0
	}
	status := "ok"
	if curVal < limit {
		status = "REGRESSED"
		g.failed = true
	}
	fmt.Printf("%-34s %10.1f %s (baseline %10.1f, floor %10.1f)  %s\n",
		label, curVal, unit, baseVal, limit, status)
}

func loadServe(path string) (bench.ServeReport, error) {
	var r bench.ServeReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "serve" || len(r.Clusters) == 0 {
		return r, fmt.Errorf("%s: not a serve report", path)
	}
	return r, nil
}

// checkServe gates the serving figure: per cluster size, the saturation
// knee (rate scale and sustained throughput) must not fall below the
// baseline floor. The per-cohort base-rate SLO percentiles are printed
// for context but not gated — the knee already summarizes serving
// capacity end to end, and the SLO bound itself is enforced inside the
// knee criterion.
func checkServe(g *gate, basePath, curPath string) {
	base, err := loadServe(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadServe(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	curByNodes := make(map[int]bench.ServeClusterReport, len(cur.Clusters))
	for _, c := range cur.Clusters {
		curByNodes[c.Nodes] = c
	}
	// Drive from the baseline: a cluster size that vanishes from the
	// current report must fail, not silently skip its checks.
	for _, b := range base.Clusters {
		c, ok := curByNodes[b.Nodes]
		if !ok {
			fmt.Printf("serve n=%d MISSING from current report\n", b.Nodes)
			g.failed = true
			continue
		}
		g.checkFloor(fmt.Sprintf("serve n=%d knee", b.Nodes), "×base rate", 0,
			b.KneeRateScale, c.KneeRateScale)
		g.checkFloor(fmt.Sprintf("serve n=%d knee throughput", b.Nodes), "req/ms", 0,
			b.KneeThroughputPerMs, c.KneeThroughputPerMs)
		for _, co := range c.Cohorts {
			fmt.Printf("serve n=%d cohort %-6s e2e p50/p95/p99 %.1f/%.1f/%.1f µs (informational)\n",
				c.Nodes, co.Cohort, co.EndToEndP50Us, co.EndToEndP95Us, co.EndToEndP99Us)
		}
	}
}

func loadFailover(path string) (bench.FailoverReport, error) {
	var r bench.FailoverReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "failover" || len(r.Rows) == 0 {
		return r, fmt.Errorf("%s: not a failover report", path)
	}
	return r, nil
}

// checkFailover gates the fail-stop recovery figure: the detection
// latency and the per-k evacuation makespans (both pipelines) must not
// regress beyond tolerance. The reclaimed slot count is an exact
// protocol quantity already pinned by unit tests, so it is printed for
// context only.
func checkFailover(g *gate, basePath, curPath string) {
	base, err := loadFailover(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadFailover(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	g.check("failover detection", "µs", latencyGraceMicros, base.DetectionMicros, cur.DetectionMicros)
	curByK := make(map[int]bench.FailoverRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curByK[r.K] = r
	}
	// Drive the gate from the baseline: a batch size that vanishes from
	// the current report must fail, not silently skip its checks.
	for _, b := range base.Rows {
		c, ok := curByK[b.K]
		if !ok {
			fmt.Printf("failover k=%d MISSING from current report\n", b.K)
			g.failed = true
			continue
		}
		g.check(fmt.Sprintf("failover k=%d evac legacy", b.K), "µs", latencyGraceMicros,
			b.EvacLegacyMicros, c.EvacLegacyMicros)
		g.check(fmt.Sprintf("failover k=%d evac convoy", b.K), "µs", latencyGraceMicros,
			b.EvacConvoyMicros, c.EvacConvoyMicros)
		fmt.Printf("failover k=%d reclaimed %d slots (baseline %d, informational)\n",
			b.K, c.ReclaimedSlots, b.ReclaimedSlots)
	}
}

func loadPartition(path string) (bench.PartitionReport, error) {
	var r bench.PartitionReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "partition" || len(r.Rows) == 0 {
		return r, fmt.Errorf("%s: not a partition report", path)
	}
	return r, nil
}

// checkPartition gates the partial-failure figure. The rejoin latency
// and the per-k RPC-timeout counts are deterministic protocol
// quantities — lease arithmetic and deadline expiries — so they are
// gated exactly; the negotiation makespans summarize the cost model
// end to end and get the relative tolerance. Zero evacuations is
// asserted inside the bench itself (it panics otherwise), so a report
// that exists at all already carries that property.
func checkPartition(g *gate, basePath, curPath string) {
	base, err := loadPartition(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadPartition(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	g.checkExact("partition rejoin", "µs", base.RejoinMicros, cur.RejoinMicros)
	curByK := make(map[int]bench.PartitionRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curByK[r.K] = r
	}
	// Drive the gate from the baseline: a concurrency level that
	// vanishes from the current report must fail, not silently skip.
	for _, b := range base.Rows {
		c, ok := curByK[b.K]
		if !ok {
			fmt.Printf("partition k=%d MISSING from current report\n", b.K)
			g.failed = true
			continue
		}
		g.checkExact(fmt.Sprintf("partition k=%d timeouts", b.K), "", float64(b.RPCTimeouts), float64(c.RPCTimeouts))
		g.check(fmt.Sprintf("partition k=%d makespan", b.K), "µs", latencyGraceMicros,
			b.NegotiationMicros, c.NegotiationMicros)
	}
	curByFactor := make(map[int]bench.PartitionSlowRow, len(cur.SlowRows))
	for _, r := range cur.SlowRows {
		curByFactor[r.Factor] = r
	}
	for _, b := range base.SlowRows {
		c, ok := curByFactor[b.Factor]
		if !ok {
			fmt.Printf("partition slow x%d MISSING from current report\n", b.Factor)
			g.failed = true
			continue
		}
		g.checkExact(fmt.Sprintf("partition slow x%d timeouts", b.Factor), "", float64(b.RPCTimeouts), float64(c.RPCTimeouts))
		g.check(fmt.Sprintf("partition slow x%d nego", b.Factor), "µs", latencyGraceMicros,
			b.NegotiationMicros, c.NegotiationMicros)
	}
}

func loadScale(path string) (bench.ScaleReport, error) {
	var r bench.ScaleReport
	if err := loadJSON(path, &r); err != nil {
		return r, err
	}
	if r.Figure != "scale" || len(r.Clusters) == 0 {
		return r, fmt.Errorf("%s: not a scale report", path)
	}
	return r, nil
}

// checkExact records an exact-equality check: the figure is a
// deterministic virtual quantity, so the only acceptable current value
// is the baseline itself.
func (g *gate) checkExact(label, unit string, baseVal, curVal float64) {
	status := "ok"
	if curVal != baseVal {
		status = "CHANGED"
		g.failed = true
	}
	fmt.Printf("%-34s %12.1f %s (baseline %12.1f, exact)  %s\n", label, curVal, unit, baseVal, status)
}

// checkScale gates the kernel-scaling figure. Everything virtual is
// exact: the workload parameters, and per cluster size the thread
// count, total events, migrations and final virtual clock — plus, per
// gather strategy, the negotiation burst's events, negotiation and
// failure counts, merged bytes and virtual clock. pm2bench already
// asserts every worker count reproduces the serial run, so one gated
// row per workload covers all worker counts. Wall-clock and events/sec
// are printed for context only, and how they are presented follows the
// report's recorded GOMAXPROCS: on a single-core runner the pool cannot
// physically run lanes concurrently, so speedups are suppressed there —
// parity is carried entirely by the exact virtual rows.
func checkScale(g *gate, basePath, curPath string) {
	base, err := loadScale(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadScale(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if base.Hops != cur.Hops || base.Spin != cur.Spin {
		fmt.Fprintf(os.Stderr, "benchcheck: scale workload mismatch: baseline hops=%d spin=%d, current hops=%d spin=%d\n",
			base.Hops, base.Spin, cur.Hops, cur.Spin)
		os.Exit(2)
	}
	multicore := cur.MaxProcs > 1
	if multicore {
		fmt.Printf("scale GOMAXPROCS=%d: wall-clock speedups reported (informational, this host)\n", cur.MaxProcs)
	} else {
		fmt.Println("scale GOMAXPROCS=1: single-core runner — speedups suppressed, parity asserted by exact virtual counts")
	}
	// scaleRuns prints one workload's wall-clock rows, speedups only on a
	// multicore runner.
	scaleRuns := func(prefix string, runs []bench.ScaleWorkerRun) {
		for _, r := range runs {
			if multicore {
				fmt.Printf("%s workers=%d wall %.1f ms, %.0f events/sec, %.2fx (informational)\n",
					prefix, r.Workers, r.WallMs, r.EventsPerSec, r.Speedup)
			} else {
				fmt.Printf("%s workers=%d wall %.1f ms, %.0f events/sec (informational)\n",
					prefix, r.Workers, r.WallMs, r.EventsPerSec)
			}
		}
	}
	curByNodes := make(map[int]bench.ScaleClusterReport, len(cur.Clusters))
	for _, c := range cur.Clusters {
		curByNodes[c.Nodes] = c
	}
	// Drive from the baseline: a cluster size (or a gather column) that
	// vanishes from the current report must fail, not silently skip its
	// checks.
	for _, b := range base.Clusters {
		c, ok := curByNodes[b.Nodes]
		if !ok {
			fmt.Printf("scale n=%d MISSING from current report\n", b.Nodes)
			g.failed = true
			continue
		}
		g.checkExact(fmt.Sprintf("scale n=%d threads", b.Nodes), "", float64(b.Threads), float64(c.Threads))
		g.checkExact(fmt.Sprintf("scale n=%d events", b.Nodes), "", float64(b.Events), float64(c.Events))
		g.checkExact(fmt.Sprintf("scale n=%d migrations", b.Nodes), "", float64(b.Migrations), float64(c.Migrations))
		g.checkExact(fmt.Sprintf("scale n=%d virtual", b.Nodes), "µs", b.VirtualMicros, c.VirtualMicros)
		scaleRuns(fmt.Sprintf("scale n=%d", c.Nodes), c.Runs)
		curByGather := make(map[string]bench.ScaleGatherReport, len(c.Gathers))
		for _, gr := range c.Gathers {
			curByGather[gr.Gather] = gr
		}
		for _, bg := range b.Gathers {
			cg, ok := curByGather[bg.Gather]
			if !ok {
				fmt.Printf("scale n=%d gather=%s MISSING from current report\n", b.Nodes, bg.Gather)
				g.failed = true
				continue
			}
			label := fmt.Sprintf("scale n=%d %s", b.Nodes, bg.Gather)
			g.checkExact(label+" events", "", float64(bg.Events), float64(cg.Events))
			g.checkExact(label+" negotiations", "", float64(bg.Negotiations), float64(cg.Negotiations))
			g.checkExact(label+" failures", "", float64(bg.Failures), float64(cg.Failures))
			g.checkExact(label+" merged", "B", float64(bg.MergedBytes), float64(cg.MergedBytes))
			g.checkExact(label+" virtual", "µs", bg.VirtualMicros, cg.VirtualMicros)
			scaleRuns(label, cg.Runs)
		}
	}
}

func checkNegotiation(g *gate, basePath, curPath string) {
	base, err := loadNegotiation(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadNegotiation(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Gathers))
	for name := range base.Gathers {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		b := base.Gathers[name]
		c, ok := cur.Gathers[name]
		if !ok {
			fmt.Printf("%-12s MISSING from current report\n", name)
			g.failed = true
			continue
		}
		g.check(name+" cold slope", "µs/node", slopeGraceMicros, b.ColdSlopeMicrosPerNode, c.ColdSlopeMicrosPerNode)
		g.check(name+" warm slope", "µs/node", slopeGraceMicros, b.WarmSlopeMicrosPerNode, c.WarmSlopeMicrosPerNode)
		fmt.Printf("%-12s merged bytes cold %d / warm %d (baseline %d / %d, informational)\n",
			name, c.ColdMergedBytes, c.WarmMergedBytes, b.ColdMergedBytes, b.WarmMergedBytes)
	}
}

func checkMigration(g *gate, basePath, curPath string) {
	base, err := loadMigration(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadMigration(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if base.PayloadBytes != cur.PayloadBytes {
		fmt.Fprintf(os.Stderr, "benchcheck: payload mismatch: baseline %d B, current %d B\n",
			base.PayloadBytes, cur.PayloadBytes)
		os.Exit(2)
	}
	g.check("migration legacy ping-pong", "µs/hop", latencyGraceMicros, base.LegacyMicrosPerHop, cur.LegacyMicrosPerHop)
	g.check("migration zero-copy ping-pong", "µs/hop", latencyGraceMicros, base.ZeroCopyMicrosPerHop, cur.ZeroCopyMicrosPerHop)
	curByK := make(map[int]bench.ConvoyReport, len(cur.Convoy))
	for _, c := range cur.Convoy {
		curByK[c.K] = c
	}
	for _, c := range cur.Convoy {
		found := false
		for _, b := range base.Convoy {
			found = found || b.K == c.K
		}
		if !found {
			fmt.Printf("convoy k=%d MISSING from baseline report\n", c.K)
			g.failed = true
		}
	}
	// Drive the gate from the baseline: a batch size that vanishes from
	// the current report must fail, not silently skip its checks.
	for _, b := range base.Convoy {
		c, ok := curByK[b.K]
		if !ok {
			fmt.Printf("convoy k=%d MISSING from current report\n", b.K)
			g.failed = true
			continue
		}
		g.check(fmt.Sprintf("convoy k=%d per-thread", b.K), "µs", latencyGraceMicros,
			b.PerThreadConvoyMicros, c.PerThreadConvoyMicros)
		g.check(fmt.Sprintf("convoy k=%d wire", b.K), "B/thread", 0,
			float64(b.ConvoyBytesPerThread), float64(c.ConvoyBytesPerThread))
	}
}

func main() {
	baseline := flag.String("baseline", "ci/BENCH_negotiation.baseline.json", "committed negotiation baseline report")
	current := flag.String("current", "BENCH_negotiation.json", "freshly generated negotiation report")
	migBaseline := flag.String("mig-baseline", "ci/BENCH_migration.baseline.json", "committed migration baseline report")
	migCurrent := flag.String("mig-current", "BENCH_migration.json", "freshly generated migration report (empty to skip the migration gate)")
	serveBaseline := flag.String("serve-baseline", "ci/BENCH_serve.baseline.json", "committed serve baseline report")
	serveCurrent := flag.String("serve-current", "BENCH_serve.json", "freshly generated serve report (empty to skip the serve gate)")
	failoverBaseline := flag.String("failover-baseline", "ci/BENCH_failover.baseline.json", "committed failover baseline report")
	failoverCurrent := flag.String("failover-current", "BENCH_failover.json", "freshly generated failover report (empty to skip the failover gate)")
	partitionBaseline := flag.String("partition-baseline", "ci/BENCH_partition.baseline.json", "committed partition baseline report")
	partitionCurrent := flag.String("partition-current", "BENCH_partition.json", "freshly generated partition report (empty to skip the partition gate)")
	scaleBaseline := flag.String("scale-baseline", "ci/BENCH_scale.baseline.json", "committed kernel-scaling baseline report")
	scaleCurrent := flag.String("scale-current", "BENCH_scale.json", "freshly generated kernel-scaling report (empty to skip the scale gate)")
	tolerance := flag.Float64("tolerance", 0.25, "maximum allowed relative regression")
	flag.Parse()

	g := &gate{tolerance: *tolerance}
	checkNegotiation(g, *baseline, *current)
	if *migCurrent != "" {
		if _, err := os.Stat(*migCurrent); err != nil && os.IsNotExist(err) {
			fmt.Printf("%s not present; skipping the migration gate\n", *migCurrent)
		} else {
			checkMigration(g, *migBaseline, *migCurrent)
		}
	}
	if *serveCurrent != "" {
		if _, err := os.Stat(*serveCurrent); err != nil && os.IsNotExist(err) {
			fmt.Printf("%s not present; skipping the serve gate\n", *serveCurrent)
		} else {
			checkServe(g, *serveBaseline, *serveCurrent)
		}
	}
	if *failoverCurrent != "" {
		if _, err := os.Stat(*failoverCurrent); err != nil && os.IsNotExist(err) {
			fmt.Printf("%s not present; skipping the failover gate\n", *failoverCurrent)
		} else {
			checkFailover(g, *failoverBaseline, *failoverCurrent)
		}
	}
	if *partitionCurrent != "" {
		if _, err := os.Stat(*partitionCurrent); err != nil && os.IsNotExist(err) {
			fmt.Printf("%s not present; skipping the partition gate\n", *partitionCurrent)
		} else {
			checkPartition(g, *partitionBaseline, *partitionCurrent)
		}
	}
	if *scaleCurrent != "" {
		if _, err := os.Stat(*scaleCurrent); err != nil && os.IsNotExist(err) {
			fmt.Printf("%s not present; skipping the scale gate\n", *scaleCurrent)
		} else {
			checkScale(g, *scaleBaseline, *scaleCurrent)
		}
	}
	if g.failed {
		fmt.Fprintln(os.Stderr, "benchcheck: regression beyond tolerance — see report above")
		os.Exit(1)
	}
	fmt.Println("benchcheck: all figures within tolerance")
}
