// benchcheck is the CI perf-regression gate: it compares the slopes in
// a freshly generated BENCH_negotiation.json (pm2bench -fig negotiation
// -json) against the committed baseline and exits non-zero if any
// gather strategy's cold or warm per-node slope regressed by more than
// the tolerance (default 25%).
//
// Usage:
//
//	benchcheck -baseline ci/BENCH_negotiation.baseline.json -current BENCH_negotiation.json
//	benchcheck -tolerance 0.10 ...   # tighten the gate to 10%
//
// Merged-byte counts are reported for context but not gated: they are
// exact protocol quantities already pinned by unit tests, while the
// slopes summarize the virtual-time cost model end to end. A small
// absolute grace (0.5 µs/node) keeps near-zero slopes (the warm delta
// gather) from tripping the relative gate on rounding noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

// slopeGraceMicros is the absolute slack added on top of the relative
// tolerance, so slopes measured in single-digit µs/node are not failed
// by sub-µs jitter in the cost accounting.
const slopeGraceMicros = 0.5

func load(path string) (bench.NegotiationReport, error) {
	var r bench.NegotiationReport
	blob, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(blob, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Figure != "negotiation" || len(r.Gathers) == 0 {
		return r, fmt.Errorf("%s: not a negotiation report", path)
	}
	return r, nil
}

func main() {
	baseline := flag.String("baseline", "ci/BENCH_negotiation.baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH_negotiation.json", "freshly generated report")
	tolerance := flag.Float64("tolerance", 0.25, "maximum allowed relative slope regression")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Gathers))
	for name := range base.Gathers {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	check := func(name, which string, baseSlope, curSlope float64) {
		limit := baseSlope*(1+*tolerance) + slopeGraceMicros
		status := "ok"
		if curSlope > limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-12s %-5s slope %8.1f µs/node (baseline %8.1f, limit %8.1f)  %s\n",
			name, which, curSlope, baseSlope, limit, status)
	}
	for _, name := range names {
		b := base.Gathers[name]
		c, ok := cur.Gathers[name]
		if !ok {
			fmt.Printf("%-12s MISSING from current report\n", name)
			failed = true
			continue
		}
		check(name, "cold", b.ColdSlopeMicrosPerNode, c.ColdSlopeMicrosPerNode)
		check(name, "warm", b.WarmSlopeMicrosPerNode, c.WarmSlopeMicrosPerNode)
		fmt.Printf("%-12s merged bytes cold %d / warm %d (baseline %d / %d, informational)\n",
			name, c.ColdMergedBytes, c.WarmMergedBytes, b.ColdMergedBytes, b.WarmMergedBytes)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: slope regression beyond tolerance — see report above")
		os.Exit(1)
	}
	fmt.Println("benchcheck: all slopes within tolerance")
}
