// pm2bench regenerates every figure, table and in-text measurement of the
// paper's evaluation (§5), plus the ablations from DESIGN.md, as text
// tables. All numbers are virtual microseconds from the calibrated cost
// model; runs are deterministic.
//
// Usage:
//
//	pm2bench -fig all
//	pm2bench -fig 11a          # Figure 11 top: 0–500 KB
//	pm2bench -fig 11b          # Figure 11 bottom: 1–8 MB
//	pm2bench -fig migration    # §5: ping-pong < 75 µs + payload sweep
//	pm2bench -fig negotiation  # §5: 255 µs + 165 µs/node
//	pm2bench -fig negotiation -json   # also write BENCH_negotiation.json
//	pm2bench -fig contention   # concurrent initiators × negotiation arbiter
//	pm2bench -fig failover     # node death: detection, evacuation vs batch size
//	pm2bench -fig failover -json      # also write BENCH_failover.json
//	pm2bench -fig partition    # live partition & slow node: timeouts, suspicion, rejoin
//	pm2bench -fig partition -json     # also write BENCH_partition.json
//	pm2bench -fig 5            # Figure 5: the memory layout
//	pm2bench -fig create       # thread creation cost
//	pm2bench -fig ablations    # slot cache / pack mode / distribution / pointers
//	pm2bench -fig scenarios    # placement-policy × workload matrix
//	pm2bench -fig scenarios -policy work-stealing
//	pm2bench -fig scenarios -arbiter sharded
//	pm2bench -fig serve        # serving workload: per-cohort SLO + saturation knee
//	pm2bench -fig serve -json  # also write BENCH_serve.json
//	pm2bench -fig scale        # kernel scaling: 64/256/1024/4096 nodes × worker pool × gather burst
//	pm2bench -fig scale -workers 1,8 -cpuprofile scale.pprof
//	pm2bench -fig scale -nodes 4096 -gather tree   # one size, one gather column
//
// The scale figure is the only one whose wall-clock columns measure the
// host machine; its virtual columns (events, migrations, virtual time)
// are exact and are what CI gates. -cpuprofile/-memprofile write pprof
// profiles of whatever figure runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/scenario"
	pm2pub "repro/pm2"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to regenerate")
	trials := flag.Int("trials", 3, "trials per Figure 11 point")
	pol := flag.String("policy", "", "restrict -fig scenarios to one placement policy")
	seed := flag.Uint64("seed", 1, "workload seed for -fig scenarios")
	nodes := flag.Int("nodes", 4, "cluster size for -fig scenarios (e.g. 4, 16, 64); when set explicitly it also overrides the -fig scale sweep to that one size")
	gather := flag.String("gather", "", "gather strategy for -fig scenarios/contention, or restrict the -fig scale burst columns to one: "+strings.Join(pm2pub.GatherNames(), " | "))
	arbiter := flag.String("arbiter", "", "negotiation arbiter for -fig scenarios, or restrict -fig contention to one: "+strings.Join(pm2pub.ArbiterNames(), " | "))
	jsonOut := flag.Bool("json", false, "with -fig negotiation/migration, also write the machine-readable report to -out")
	out := flag.String("out", "", "path of the -json report (default BENCH_<figure>.json)")
	workers := flag.String("workers", "1,4,8", "comma-separated kernel worker counts for -fig scale (must start at 1, the serial reference)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when the run ends")
	flag.Parse()
	nodesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "nodes" {
			nodesSet = true
		}
	})

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			}
		}()
	}

	gatherName, err := pm2pub.ParseGather(*gather)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
		os.Exit(2)
	}
	arbiterName, err := pm2pub.ParseArbiter(*arbiter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
		os.Exit(2)
	}
	// jsonPath resolves the report path for one figure: the explicit
	// -out when given, the figure's canonical name otherwise. Under
	// -fig all several reports are written, so -out (one path) is
	// rejected rather than letting a later report overwrite an earlier
	// one.
	if *fig == "all" && *out != "" {
		fmt.Fprintln(os.Stderr, "pm2bench: -out is ambiguous with -fig all (several reports); use the default names or run the figures separately")
		os.Exit(2)
	}
	jsonPath := func(def string) string {
		if !*jsonOut {
			return ""
		}
		if *out != "" {
			return *out
		}
		return def
	}
	// The scale figure's default sweep; an explicit -nodes narrows it to
	// one size (e.g. a quick 4096-only smoke), and -gather restricts the
	// negotiation-burst columns to one strategy.
	scaleNodes := []int{64, 256, 1024, 4096}
	if nodesSet {
		scaleNodes = []int{*nodes}
	}
	scaleGathers := pm2.GatherModeNames()
	if *gather != "" {
		scaleGathers = []string{gatherName}
	}

	switch *fig {
	case "all":
		layoutFig()
		fig11a(*trials)
		fig11b(*trials)
		migration(jsonPath("BENCH_migration.json"))
		negotiation(jsonPath("BENCH_negotiation.json"))
		contention(*arbiter)
		failover(jsonPath("BENCH_failover.json"))
		partitionFig(jsonPath("BENCH_partition.json"))
		create()
		ablations()
		scenarios(*pol, *seed, *nodes, gatherName, arbiterName)
		serveFig(*pol, *seed, jsonPath("BENCH_serve.json"))
		scaleFig(*workers, scaleNodes, scaleGathers, jsonPath("BENCH_scale.json"))
	case "5":
		layoutFig()
	case "11a":
		fig11a(*trials)
	case "11b":
		fig11b(*trials)
	case "migration":
		migration(jsonPath("BENCH_migration.json"))
	case "negotiation":
		negotiation(jsonPath("BENCH_negotiation.json"))
	case "contention":
		contention(*arbiter)
	case "failover":
		failover(jsonPath("BENCH_failover.json"))
	case "partition":
		partitionFig(jsonPath("BENCH_partition.json"))
	case "create":
		create()
	case "ablations":
		ablations()
	case "scenarios":
		scenarios(*pol, *seed, *nodes, gatherName, arbiterName)
	case "serve":
		serveFig(*pol, *seed, jsonPath("BENCH_serve.json"))
	case "scale":
		scaleFig(*workers, scaleNodes, scaleGathers, jsonPath("BENCH_scale.json"))
	default:
		fmt.Fprintf(os.Stderr, "pm2bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("\n================ %s\n", title)
}

func layoutFig() {
	header("Figure 5: the shared memory layout (identical on all nodes)")
	rows := []struct {
		name       string
		base, end  uint32
		annotation string
	}{
		{"code", layout.CodeBase, layout.CodeEnd, "fixed at compile time, replicated"},
		{"static data", layout.DataBase, layout.DataEnd, "string table etc., replicated"},
		{"local heap", layout.HeapBase, layout.HeapEnd, "malloc; node-local, never migrates"},
		{"iso-address area", layout.IsoBase, layout.IsoEnd, "globally reserved, locally allocated"},
		{"process stack", layout.StackBase, layout.StackEnd, "container process"},
	}
	fmt.Printf("%-18s %-12s %-12s %9s   %s\n", "region", "base", "end", "size", "notes")
	for _, r := range rows {
		fmt.Printf("%-18s 0x%08x   0x%08x   %9s   %s\n",
			r.name, r.base, r.end, human(uint64(r.end-r.base)), r.annotation)
	}
	fmt.Printf("\nslots: %d bytes each, %d slots, per-node bitmap %d bytes (paper: 64 kB / 57344 / 7 kB)\n",
		layout.SlotSize, layout.SlotCount, layout.BitmapBytes)
}

func human(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.0f KB", float64(n)/(1<<10))
	}
}

func fig11(title string, sizes []uint32, trials int) {
	header(title)
	fmt.Printf("%12s %16s %20s %14s %s\n",
		"size (bytes)", "malloc (µs)", "pm2_isomalloc (µs)", "overhead (µs)", "negotiated")
	for _, r := range bench.Fig11(sizes, trials, 2) {
		neg := ""
		if r.Negotiated {
			neg = "yes"
		}
		fmt.Printf("%12d %16.1f %20.1f %14.1f %10s\n",
			r.Size, r.MallocMicros, r.IsoMicros, r.IsoMicros-r.MallocMicros, neg)
	}
}

func fig11a(trials int) {
	sizes := []uint32{}
	for s := uint32(25_000); s <= 500_000; s += 25_000 {
		sizes = append(sizes, s)
	}
	fig11("Figure 11 (top): malloc vs pm2_isomalloc, small requests, 2 nodes, round-robin", sizes, trials)
	fmt.Println("\n(paper: both curves rise together; the isomalloc offset is the ~255 µs negotiation,")
	fmt.Println(" triggered by every multi-slot request under round-robin)")
}

func fig11b(trials int) {
	sizes := []uint32{}
	for s := uint32(1 << 20); s <= 8<<20; s += 1 << 20 {
		sizes = append(sizes, s)
	}
	fig11("Figure 11 (bottom): malloc vs pm2_isomalloc, large requests, 2 nodes, round-robin", sizes, trials)
	fmt.Println("\n(paper: for large allocations the overhead is small and rather insignificant —")
	fmt.Println(" the approach scales well)")
}

func migration(jsonPath string) {
	header("§5: thread migration (ping-pong between two Myrinet nodes)")
	r := bench.MigrationPingPong(100, pm2.Config{})
	fmt.Printf("no static data : avg %6.1f µs   worst %6.1f µs   (paper: < 75 µs)\n", r.AvgMicros, r.WorstMicros)
	fmt.Printf("\nwith isomalloc'd payload: copying path vs zero-copy scatter-gather (Config.Convoy):\n")
	fmt.Printf("%14s %14s %16s %12s %14s\n", "payload (B)", "legacy (µs)", "zero-copy (µs)", "saved", "wire bytes/hop")
	const gatePayload = 64 << 10
	var gateLegacy, gateZeroCopy float64
	for _, payload := range []uint32{0, 1 << 10, 8 << 10, 32 << 10, gatePayload, 256 << 10} {
		run := func(convoy bool) bench.MigrationResult {
			cfg := pm2.Config{Convoy: convoy}
			if payload == 0 {
				return bench.MigrationPingPong(20, cfg)
			}
			return bench.MigrationWithPayload(20, payload, cfg)
		}
		legacy, zc := run(false), run(true)
		if payload == gatePayload {
			gateLegacy, gateZeroCopy = legacy.AvgMicros, zc.AvgMicros
		}
		fmt.Printf("%14d %14.1f %16.1f %11.1f%% %14d\n", payload, legacy.AvgMicros, zc.AvgMicros,
			100*(1-zc.AvgMicros/legacy.AvgMicros), legacy.BytesOnWire/uint64(legacy.Hops))
	}
	fmt.Println("(the zero-copy pipeline drops the pack, NIC and install copies — the NIC gathers")
	fmt.Println(" the spans from slot memory and scatters them into the installed pages, charging")
	fmt.Println(" one DMA setup per span; wire occupancy still covers every byte)")

	header("Extension: thread convoys — k threads to one destination per balancing decision")
	fmt.Printf("%12s %4s %18s %18s %10s %14s %14s\n",
		"payload (B)", "k", "legacy µs/thread", "convoy µs/thread", "saved", "msgs (L/C)", "convoy B/thread")
	var convoyRows []bench.ConvoyRow
	for _, row := range bench.MigrationConvoy(gatePayload, []int{1, 2, 4, 8}) {
		convoyRows = append(convoyRows, row)
		fmt.Printf("%12d %4d %18.1f %18.1f %9.1f%% %10d/%-3d %14d\n",
			row.Payload, row.K, row.PerThreadLegacyMicros, row.PerThreadConvoyMicros,
			100*(1-row.PerThreadConvoyMicros/row.PerThreadLegacyMicros),
			row.LegacyMessages, row.ConvoyMessages, row.ConvoyBytesPerThread)
	}
	fmt.Println("(a convoy pays one express header, one send/receive overhead and one wire latency")
	fmt.Println(" for the whole batch — per-thread cost falls as k grows, sub-linear in messages)")

	rel := bench.RelocationPingPong(20, 32)
	fmt.Printf("\nrelocation baseline (32 registered pointers): avg %.1f µs\n", rel.AvgMicros)
	fmt.Println("(the paper cites 150 µs for a null-thread migration in Active Threads)")

	if jsonPath != "" {
		report := bench.MigrationReport{
			Figure:               "migration",
			PayloadBytes:         gatePayload,
			LegacyMicrosPerHop:   gateLegacy,
			ZeroCopyMicrosPerHop: gateZeroCopy,
		}
		for _, row := range convoyRows {
			report.Convoy = append(report.Convoy, bench.ConvoyReport{
				K:                     row.K,
				PerThreadLegacyMicros: row.PerThreadLegacyMicros,
				PerThreadConvoyMicros: row.PerThreadConvoyMicros,
				ConvoyBytesPerThread:  row.ConvoyBytesPerThread,
			})
		}
		writeJSON(jsonPath, report)
	}
}

// writeJSON marshals a report and writes it, exiting on failure.
func writeJSON(path string, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func negotiation(jsonPath string) {
	header("§5: negotiation cost vs cluster size (multi-slot alloc, round-robin)")
	fmt.Printf("%8s %14s %18s\n", "nodes", "cost (µs)", "delta/node (µs)")
	prev, prevNodes := 0.0, 0
	for _, r := range bench.NegotiationScaling([]int{2, 3, 4, 5, 6, 8, 12, 16}) {
		delta := ""
		if prevNodes > 0 {
			delta = fmt.Sprintf("%.1f", (r.Micros-prev)/float64(r.Nodes-prevNodes))
		}
		fmt.Printf("%8d %14.1f %18s\n", r.Nodes, r.Micros, delta)
		prev, prevNodes = r.Micros, r.Nodes
	}
	fmt.Println("\n(paper: 255 µs in a 2-node configuration, +165 µs per extra node)")

	header("Extension: gather strategy vs cluster size (same negotiation, cold)")
	counts := []int{4, 8, 16, 32, 64}
	modes := []pm2.GatherMode{pm2.GatherSequential, pm2.GatherBatched, pm2.GatherTree, pm2.GatherDelta}
	costs := make(map[pm2.GatherMode][]bench.NegotiationRow, len(modes))
	for _, m := range modes {
		costs[m] = bench.NegotiationScalingGather(counts, m)
	}
	fmt.Printf("%8s %16s %16s %16s %16s\n", "nodes", "sequential (µs)", "batched (µs)", "tree (µs)", "delta (µs)")
	for i, p := range counts {
		fmt.Printf("%8d %16.1f %16.1f %16.1f %16.1f\n", p,
			costs[pm2.GatherSequential][i].Micros,
			costs[pm2.GatherBatched][i].Micros,
			costs[pm2.GatherTree][i].Micros,
			costs[pm2.GatherDelta][i].Micros)
	}
	fmt.Printf("\n%-12s", "slope µs/node:")
	for _, m := range modes {
		fmt.Printf("  %s %.1f", m, bench.SlopeMicrosPerNode(costs[m]))
	}
	fmt.Println()
	fmt.Println("(batched overlaps the reply wire time; the tree also cuts the messages the")
	fmt.Println(" initiator handles to O(log n) at the price of a range-style purchase; a cold")
	fmt.Println(" delta gather is first contact everywhere, so it ships full maps like batched)")

	header("Extension: steady state — second negotiation by the same initiator")
	warm := make(map[pm2.GatherMode][]bench.NegotiationRow, len(modes))
	for _, m := range modes {
		warm[m] = bench.NegotiationScalingGatherWarm(counts, m)
	}
	fmt.Printf("%8s %16s %16s %16s %16s\n", "nodes", "sequential (µs)", "batched (µs)", "tree (µs)", "delta (µs)")
	for i, p := range counts {
		fmt.Printf("%8d %16.1f %16.1f %16.1f %16.1f\n", p,
			warm[pm2.GatherSequential][i].Micros,
			warm[pm2.GatherBatched][i].Micros,
			warm[pm2.GatherTree][i].Micros,
			warm[pm2.GatherDelta][i].Micros)
	}
	fmt.Printf("\n%-12s", "slope µs/node:")
	for _, m := range modes {
		fmt.Printf("  %s %.1f", m, bench.SlopeMicrosPerNode(warm[m]))
	}
	fmt.Println()
	last := len(counts) - 1
	batBytes := warm[pm2.GatherBatched][last].MergedBytes
	delBytes := warm[pm2.GatherDelta][last].MergedBytes
	// The first delta negotiation is first contact everywhere: exactly one
	// full map per peer. Everything beyond that is what the warm round cost.
	delWarm := delBytes - uint64((counts[last]-1)*layout.BitmapBytes)
	fmt.Printf("merged bytes over both negotiations at %d nodes: batched %d, delta %d (%.1f%% less)\n",
		counts[last], batBytes, delBytes, 100*(1-float64(delBytes)/float64(batBytes)))
	fmt.Printf("warm round alone at %d nodes: batched %d bytes, delta %d bytes\n",
		counts[last], batBytes/2, delWarm)
	fmt.Println("(the delta gather caches each peer's map + version and the global OR between")
	fmt.Println(" rounds; warm rounds ship only the words that changed, so the merge term — a")
	fmt.Println(" full 7 KB per peer per round under batched — drops to the delta bytes)")

	if jsonPath != "" {
		report := bench.NegotiationReport{Figure: "negotiation", Nodes: counts, Gathers: map[string]bench.GatherReport{}}
		for _, m := range modes {
			report.Gathers[m.String()] = bench.GatherReport{
				ColdSlopeMicrosPerNode: bench.SlopeMicrosPerNode(costs[m]),
				WarmSlopeMicrosPerNode: bench.SlopeMicrosPerNode(warm[m]),
				ColdMergedBytes:        costs[m][last].MergedBytes,
				WarmMergedBytes:        warm[m][last].MergedBytes,
			}
		}
		writeJSON(jsonPath, report)
	}
}

// contention prints the concurrent-initiator comparison: M nodes start
// a multi-slot negotiation in the same instant under each arbiter. The
// batched gather keeps the gather term identical across arbiters, so
// the spread between the rows is purely the concurrency scheme.
func contention(only string) {
	arbs := []pm2.ArbiterMode{pm2.ArbiterGlobal, pm2.ArbiterSharded, pm2.ArbiterOptimistic}
	if only != "" {
		a, err := pm2.ParseArbiterMode(only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		arbs = []pm2.ArbiterMode{a}
	}
	header("Extension: concurrent initiators × negotiation arbiter (3-slot allocs, batched gather)")
	fmt.Printf("%6s %6s %-12s %4s %8s %8s %14s %10s %10s %10s %10s\n",
		"nodes", "inits", "arbiter", "ok", "retries", "vdecl", "makespan µs", "negos/ms", "p50 µs", "p95 µs", "p99 µs")
	for _, nm := range []struct{ nodes, inits int }{{4, 4}, {16, 4}, {16, 8}, {16, 16}, {64, 16}, {64, 32}} {
		for _, r := range bench.Contention(nm.nodes, nm.inits, arbs, pm2.GatherBatched) {
			fmt.Printf("%6d %6d %-12s %4d %8d %8d %14.1f %10.2f %10.1f %10.1f %10.1f\n",
				r.Nodes, r.Initiators, r.Arbiter, r.Succeeded, r.Retries, r.VersionDeclines,
				r.MakespanMicros, r.ThroughputPerMs, r.P50, r.P95, r.P99)
		}
	}
	fmt.Println("\n(the global arbiter serializes every negotiation through node 0's lock, so its")
	fmt.Println(" makespan grows with the initiator count; the sharded arbiter locks only the")
	fmt.Println(" shards a planned run touches, and the optimistic arbiter replaces locking with")
	fmt.Println(" version-validated purchases — disjoint negotiations overlap under both)")
}

// failover prints the fail-stop recovery figure: one node of four dies
// under k resident threads; the table reports the lease-expiry
// detection latency and the evacuation makespan with the convoy
// pipeline off and on.
func failover(jsonPath string) {
	header("Extension: node death — detection, evacuation and reclaim (4 nodes, victim holds k threads)")
	report := bench.Failover([]int{1, 2, 4, 8, 16})
	fmt.Printf("detection latency: %.1f µs (2-miss lease, 1 ms heartbeats; the crash lands on a tick, so the lease expires one period later), independent of k\n\n", report.DetectionMicros)
	fmt.Printf("%4s %18s %18s %10s %16s\n", "k", "evac legacy (µs)", "evac convoy (µs)", "saved", "reclaimed slots")
	for _, r := range report.Rows {
		fmt.Printf("%4d %18.1f %18.1f %9.1f%% %16d\n",
			r.K, r.EvacLegacyMicros, r.EvacConvoyMicros,
			100*(1-r.EvacConvoyMicros/r.EvacLegacyMicros), r.ReclaimedSlots)
	}
	fmt.Println("\n(evacuation ships one recovery convoy per survivor — the makespan grows with the")
	fmt.Println(" per-survivor share of k, not with k itself; the dead rank's owned-free slots are")
	fmt.Println(" re-dealt through version-bumping purchases, so stale cached views self-invalidate)")
	if jsonPath != "" {
		writeJSON(jsonPath, report)
	}
}

// partitionFig prints the partial-failure figure: one rank of eight is
// partitioned away (alive, unreachable) while k concurrent negotiations
// route around it on RPC deadlines; the slow table slows a rank instead
// of cutting it off. Nothing is ever evacuated — the victim rejoins.
func partitionFig(jsonPath string) {
	header("Extension: live partition — RPC deadlines, suspicion and rejoin (8 nodes, victim cut off 1–9 ms)")
	report := bench.Partition([]int{1, 2, 4, 6}, []int{2, 10, 50})
	fmt.Printf("rejoin latency: %.1f µs (suspected at the 2-miss lease, cleared on the first round after the heal), independent of k; zero evacuations throughout\n\n", report.RejoinMicros)
	fmt.Printf("%4s %14s %18s\n", "k", "rpc timeouts", "nego makespan (µs)")
	for _, r := range report.Rows {
		fmt.Printf("%4d %14d %18.1f\n", r.K, r.RPCTimeouts, r.NegotiationMicros)
	}
	fmt.Printf("\nslow node (4 nodes, one rank's wire time × factor, never suspected):\n")
	fmt.Printf("%8s %14s %18s\n", "factor", "rpc timeouts", "negotiation (µs)")
	for _, r := range report.SlowRows {
		fmt.Printf("%8d %14d %18.1f\n", r.Factor, r.RPCTimeouts, r.NegotiationMicros)
	}
	fmt.Println("\n(a gather abandons the unreachable rank after its retry budget and plans around")
	fmt.Println(" its slots; suspicion routes new work away but never evacuates a live node —")
	fmt.Println(" declaration additionally requires the crash to be real. A slow rank blows the")
	fmt.Println(" same deadlines yet stays a member: detection is reachability-based)")
	if jsonPath != "" {
		writeJSON(jsonPath, report)
	}
}

func create() {
	header("Thread creation (one local slot: no negotiation, ever)")
	avg := bench.ThreadCreate(100, pm2.Config{})
	fmt.Printf("average create cost: %.1f µs (slot acquire + descriptor/stack init)\n", avg)
	rows := bench.SlotCacheAblation(50)
	for _, r := range rows {
		fmt.Printf("%-10s  avg create %6.1f µs   mmap calls %3d   cache hits %3d\n",
			r.Label, r.AvgCreateMicros, r.Mmaps, r.CacheHits)
	}
}

func ablations() {
	header("Ablation A1/A2: migration pack mode (§6 optimization)")
	fmt.Printf("%-12s %10s %12s %16s\n", "mode", "elements", "avg (µs)", "wire bytes")
	for _, r := range bench.PackModeAblation([]int{200, 1000, 2000}) {
		fmt.Printf("%-12s %10d %12.1f %16d\n", r.Mode, r.Elements, r.AvgMicros, r.BytesOnWire)
	}

	header("Ablation A3: slot distribution vs negotiation frequency (§4.1)")
	fmt.Printf("%-18s %14s %16s %18s\n", "distribution", "negotiations", "avg cost (µs)", "total time (µs)")
	for _, r := range bench.DistributionAblation([]core.Distribution{
		core.RoundRobin{}, core.BlockCyclic{K: 4}, core.BlockCyclic{K: 32}, core.Partition{},
	}, 4, 4) {
		fmt.Printf("%-18s %14d %16.1f %18.1f\n", r.Dist, r.Negotiations, r.AvgNegMicros, r.TotalMicros)
	}

	header("Extension: the §4.4 remedies for multi-slot negotiations")
	fmt.Printf("%-14s %14s %18s\n", "remedy", "negotiations", "total time (µs)")
	for _, r := range bench.RemediesAblation(6, 4) {
		fmt.Printf("%-14s %14d %18.1f\n", r.Remedy, r.Negotiations, r.TotalMicros)
	}

	header("Ablation A4: migration cost vs registered pointers (iso flat, relocation linear)")
	fmt.Printf("%10s %14s %18s\n", "pointers", "iso (µs)", "relocation (µs)")
	for _, r := range bench.RegisteredPointerAblation([]int{0, 8, 32, 128, 512}, 10) {
		fmt.Printf("%10d %14.1f %18.1f\n", r.Pointers, r.IsoMicros, r.RelocMicros)
	}
}

// scenarios prints the placement-policy comparison: every deterministic
// workload generator under every (or one) policy.
func scenarios(only string, seed uint64, nodes int, gather, arbiter string) {
	pols := policy.Names()
	if only != "" {
		canon, err := policy.Parse(only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		pols = []string{canon.Name()}
	}
	header(fmt.Sprintf("Scenario harness: placement policy × workload (%d nodes, %s gather, %s arbiter, deterministic)", nodes, gather, arbiter))
	fmt.Printf("%-10s %-14s %12s %10s %8s %6s %10s %10s %10s %12s\n",
		"scenario", "policy", "virtual µs", "migrations", "balmoves", "negos", "neg p50µs", "neg p95µs", "neg p99µs", "wire bytes")
	for _, g := range scenario.GeneratorNames() {
		for _, p := range pols {
			res, err := scenario.Run(scenario.Spec{Scenario: g, Policy: p, Seed: seed, Nodes: nodes, Gather: gather, Arbiter: arbiter})
			if err != nil {
				fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
				os.Exit(1)
			}
			if err := res.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
				os.Exit(1)
			}
			neg := res.NegotiationPercentiles()
			fmt.Printf("%-10s %-14s %12.1f %10d %8d %6d %10.1f %10.1f %10.1f %12d\n",
				g, p, res.VirtualMicros, res.Stats.Migrations, res.BalancerMoves,
				res.Stats.Negotiations, neg.P50, neg.P95, neg.P99, res.Stats.Net.Bytes)
		}
	}
	fmt.Println("\n(same seed + policy ⇒ byte-identical trace; see internal/scenario/testdata)")
}

// serveFig prints the serving-workload figure: per-cohort SLO at the
// base arrival rate, then the rate sweep to the throughput knee — at 16
// and 64 nodes.
func serveFig(only string, seed uint64, jsonPath string) {
	// Serving placement defaults to work-stealing (the policy that
	// absorbs open-loop load best); -policy overrides.
	polName := "work-stealing"
	if only != "" {
		canon, err := policy.Parse(only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		polName = canon.Name()
	}
	report, err := bench.ServeSweep(polName, seed, []int{16, 64})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
		os.Exit(1)
	}
	for _, cl := range report.Clusters {
		header(fmt.Sprintf("Serving workload: per-cohort SLO, %d nodes, %s, base rate (open-loop)", cl.Nodes, polName))
		fmt.Printf("%-8s %8s %12s %12s %12s %12s %12s %12s\n",
			"cohort", "requests", "place p50µs", "place p95µs", "place p99µs", "e2e p50µs", "e2e p95µs", "e2e p99µs")
		for _, c := range cl.Cohorts {
			fmt.Printf("%-8s %8d %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n",
				c.Cohort, c.Requests, c.PlacementP50Us, c.PlacementP95Us, c.PlacementP99Us,
				c.EndToEndP50Us, c.EndToEndP95Us, c.EndToEndP99Us)
		}
		fmt.Printf("\nsaturation sweep (SLO: worst cohort p99 e2e ≤ %.0f µs):\n", report.SLOBudgetUs)
		fmt.Printf("%10s %9s %10s %10s %14s %12s\n",
			"rate×", "requests", "completed", "saturated", "worst p99 µs", "sustainable")
		for _, p := range cl.Sweep {
			sat, sus := "", "yes"
			if p.Saturated {
				sat = "cutoff"
			}
			if !p.Sustainable {
				sus = "no"
			}
			fmt.Printf("%10.1f %9d %10d %10s %14.1f %12s\n",
				p.RateScale, p.Requests, p.Completed, sat, p.WorstP99Us, sus)
		}
		fmt.Printf("\nknee: %.1f× base rate (%.2f requests/ms sustained)\n", cl.KneeRateScale, cl.KneeThroughputPerMs)
	}
	fmt.Println("\n(open-loop arrivals do not wait for completions: past the knee the backlog grows")
	fmt.Println(" during the arrival window and p99 blows through the SLO; past-knee points are cut")
	fmt.Println(" off by a tightened step budget — deterministically, virtual steps are exact)")

	if jsonPath != "" {
		writeJSON(jsonPath, report)
	}
}

// scaleFig prints the kernel-scaling figure: the lane-decomposed event
// kernel executing the ring-hop workload at 64/256/1024/4096 nodes,
// serially and on a worker pool, plus one negotiation burst per gather
// strategy at every size. The virtual columns are exact (and asserted
// identical at every worker count inside bench.Scale); wall-clock and
// events/sec measure the host machine.
func scaleFig(workerList string, nodeCounts []int, gatherNames []string, jsonPath string) {
	var workerCounts []int
	for _, part := range strings.Split(workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "pm2bench: bad -workers list %q\n", workerList)
			os.Exit(2)
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		fmt.Fprintln(os.Stderr, "pm2bench: -workers must start at 1 (the serial reference run)")
		os.Exit(2)
	}
	gathers := make([]pm2.GatherMode, len(gatherNames))
	for i, name := range gatherNames {
		gm, err := pm2.ParseGatherMode(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pm2bench: %v\n", err)
			os.Exit(2)
		}
		gathers[i] = gm
	}
	header("Extension: kernel scaling — per-node event lanes × worker pool (ring-hop workload)")
	report := bench.Scale(nodeCounts, workerCounts, 16, 2000, gathers)
	fmt.Printf("%6s %8s %10s %12s %11s  %8s %10s %14s %8s\n",
		"nodes", "threads", "events", "migrations", "virtual µs", "workers", "wall ms", "events/sec", "speedup")
	for _, cl := range report.Clusters {
		for i, r := range cl.Runs {
			nodes, threads := fmt.Sprint(cl.Nodes), fmt.Sprint(cl.Threads)
			events, migs, vus := fmt.Sprint(cl.Events), fmt.Sprint(cl.Migrations), fmt.Sprintf("%.1f", cl.VirtualMicros)
			if i > 0 {
				// The virtual columns are identical by construction; print
				// them once per cluster so the table reads as one sweep.
				nodes, threads, events, migs, vus = "", "", "", "", ""
			}
			fmt.Printf("%6s %8s %10s %12s %11s  %8d %10.1f %14.0f %7.2fx\n",
				nodes, threads, events, migs, vus, r.Workers, r.WallMs, r.EventsPerSec, r.Speedup)
		}
	}
	fmt.Println("\ngather burst: 8 initiators × 3-slot runs per cluster (every request is remote under round-robin striping)")
	fmt.Printf("%6s %-10s %9s %6s %6s %11s %11s  %8s %10s %8s\n",
		"nodes", "gather", "events", "negos", "fails", "merged B", "virtual µs", "workers", "wall ms", "speedup")
	for _, cl := range report.Clusters {
		for _, g := range cl.Gathers {
			for i, r := range g.Runs {
				nodes, name := fmt.Sprint(cl.Nodes), g.Gather
				events, negos, fails := fmt.Sprint(g.Events), fmt.Sprint(g.Negotiations), fmt.Sprint(g.Failures)
				merged, vus := fmt.Sprint(g.MergedBytes), fmt.Sprintf("%.1f", g.VirtualMicros)
				if i > 0 {
					nodes, name, events, negos, fails, merged, vus = "", "", "", "", "", "", ""
				}
				fmt.Printf("%6s %-10s %9s %6s %6s %11s %11s  %8d %10.1f %7.2fx\n",
					nodes, name, events, negos, fails, merged, vus, r.Workers, r.WallMs, r.Speedup)
			}
		}
	}

	fmt.Printf("\nevents slope: %.1f events/node (virtual, exact — the CI-gated quantity)\n", report.EventsSlopePerNode)
	fmt.Println("(every worker count replays the same event order: the virtual columns are")
	fmt.Println(" asserted bit-identical to the serial run before a row is printed; speedup is")
	fmt.Println(" bounded by how many lanes have work inside one wire-latency window)")
	if report.MaxProcs <= 1 {
		fmt.Println("(GOMAXPROCS=1: the worker pool cannot run lanes concurrently on this host —")
		fmt.Println(" wall-clock speedups are meaningless here; parity is carried by the exact")
		fmt.Println(" virtual columns alone)")
	} else {
		fmt.Printf("(GOMAXPROCS=%d: wall-clock speedups measure this host and stay informational)\n", report.MaxProcs)
	}

	if jsonPath != "" {
		writeJSON(jsonPath, report)
	}
}
