package pm2

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 2})
	cl.Spawn(0, "p4", 150)
	cl.Run()
	out := cl.Output()
	if len(out) != 153 {
		t.Fatalf("output lines = %d", len(out))
	}
	if !strings.Contains(cl.OutputString(), "Arrived at node 1") {
		t.Fatal("missing migration arrival line")
	}
	st := cl.Stats()
	if st.Migrations != 1 || st.AvgMigrationMicros <= 0 || st.VirtualMicros <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterCustomProgram(t *testing.T) {
	sys := NewSystem()
	sys.MustRegister(`
.program hello
.string hi "hello from node %d\n"
main:
    callb self_node
    mov   r2, r0
    loadi r1, hi
    callb printf
    halt
`)
	cl := sys.Boot(Config{Nodes: 1})
	cl.Spawn(0, "hello", 0)
	cl.Run()
	if got := cl.OutputString(); got != "[node0] hello from node 0" {
		t.Fatalf("output = %q", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	sys := NewSystem()
	if err := sys.Register("garbage"); err == nil {
		t.Fatal("bad program must fail")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, ok := range []string{"", "rr", "round-robin", "partition", "block-cyclic:16"} {
		if _, err := ParseDistribution(ok); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
	for _, bad := range []string{"nope", "block-cyclic:x", "block-cyclic:0"} {
		if _, err := ParseDistribution(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestMigrateThreadAndLocate(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 3})
	tid := cl.SpawnWait(0, "worker", 200_000)
	if got := cl.Locate(tid); got != 0 {
		t.Fatalf("Locate = %d", got)
	}
	cl.RunForMicros(1000)
	if !cl.MigrateThread(0, tid, 2) {
		t.Fatal("MigrateThread failed")
	}
	cl.RunForMicros(5000)
	if got := cl.Locate(tid); got != 2 {
		t.Fatalf("after migration Locate = %d", got)
	}
	cl.Run()
	if cl.Locate(tid) != -1 {
		t.Fatal("finished thread still located")
	}
	if cl.ThreadsOn(0)+cl.ThreadsOn(1)+cl.ThreadsOn(2) != 0 {
		t.Fatal("threads remain")
	}
}

func TestRelocationPolicyConfig(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 2, RelocationPolicy: true})
	cl.Spawn(0, "p2", 0)
	cl.Run()
	if !strings.Contains(cl.OutputString(), "Segmentation fault") {
		t.Fatalf("relocation policy should break p2:\n%s", cl.OutputString())
	}
}

func TestRecordAllocations(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 2, RecordAllocations: true})
	cl.Spawn(0, "p4", 110)
	cl.Run()
	allocs := cl.Allocations()
	if len(allocs) != 110 {
		t.Fatalf("allocation samples = %d", len(allocs))
	}
	for _, a := range allocs {
		if !a.Isomalloc || !a.OK || a.Size != 8 {
			t.Fatalf("sample = %+v", a)
		}
	}
}

func TestNoCacheConfig(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 2, SlotCache: -1})
	cl.Spawn(0, "pingpong", 10)
	cl.Run()
	if cl.Stats().Migrations != 10 {
		t.Fatalf("stats = %+v", cl.Stats())
	}
	if got := cl.Internal().Node(0).Slots().CachedSlots(); got != 0 {
		t.Fatalf("cache disabled but %d slots cached", got)
	}
}

func TestDefragmentFacade(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 4, PreBuySlots: 4})
	cl.Defragment()
	st := cl.Stats()
	if st.Defragmentations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Figure 7 workload still runs cleanly on the restructured map.
	cl.Spawn(0, "p4", 120)
	cl.Run()
	if len(cl.Output()) != 123 {
		t.Fatalf("output lines = %d", len(cl.Output()))
	}
}

func TestConvoyConfig(t *testing.T) {
	run := func(convoy bool) Stats {
		sys := NewSystem()
		sys.RegisterExamples()
		cl := sys.Boot(Config{Nodes: 2, Convoy: convoy})
		cl.Spawn(0, "pingpong", 12)
		cl.Run()
		if err := cl.Validate(); err != nil {
			t.Fatal(err)
		}
		return cl.Stats()
	}
	zc := run(true)
	if zc.Migrations != 12 || zc.Convoys != 12 {
		t.Fatalf("zero-copy run: %d migrations, %d convoys, want 12/12", zc.Migrations, zc.Convoys)
	}
	if zc.MigratedBytes == 0 {
		t.Fatal("zero-copy run reported no migrated payload bytes")
	}
	legacy := run(false)
	if legacy.Convoys != 0 {
		t.Fatalf("default run sent %d convoy messages, want 0", legacy.Convoys)
	}
	if legacy.MigratedBytes != zc.MigratedBytes {
		t.Fatalf("payload accounting differs: legacy %d B, convoy %d B", legacy.MigratedBytes, zc.MigratedBytes)
	}
	if zc.AvgMigrationMicros >= legacy.AvgMigrationMicros {
		t.Fatalf("zero-copy migration (%.1f µs) not below legacy (%.1f µs)",
			zc.AvgMigrationMicros, legacy.AvgMigrationMicros)
	}
}

// TestPublicCheckpointRestore pins the public checkpoint surface:
// capture mid-run, restore through a fresh System carrying the same
// image, and the restored run's full output (including the pre-capture
// lines the checkpoint recorded) is byte-identical to resuming the
// capturing cluster in place.
func TestPublicCheckpointRestore(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 4})
	cl.Spawn(0, "p4", 1000)
	cl.RunForMicros(500)
	data, err := cl.CheckpointBytes()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	cl.Resume()
	cl.Run()
	want := cl.OutputString()

	sys2 := NewSystem()
	sys2.RegisterExamples()
	rc, err := sys2.Restore(data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rc.Run()
	if got := rc.OutputString(); got != want {
		t.Fatalf("restored continuation diverged:\n--- resumed ---\n%s--- restored ---\n%s", want, got)
	}
	if err := rc.Validate(); err != nil {
		t.Fatalf("restored cluster invariants: %v", err)
	}
}

// TestFaultConfig pins the public fault surface: a crash plan through
// Config.Faults plus an attached balancer detects the death, evacuates
// the victim's thread and reclaims its slots, all visible in Stats.
func TestFaultConfig(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 4, Faults: "crash:1@3000"})
	cl.AttachBalancer(2000)
	cl.Spawn(1, "worker", 30_000)
	cl.Run()
	st := cl.Stats()
	if st.Evacuations != 1 || st.EvacuatedThreads != 1 {
		t.Fatalf("evacuations=%d evacuated=%d, want 1/1", st.Evacuations, st.EvacuatedThreads)
	}
	if st.ReclaimedSlots == 0 {
		t.Fatal("no slots reclaimed from the dead rank")
	}
	if !strings.Contains(cl.OutputString(), "declared dead") {
		t.Fatal("missing failover declaration line")
	}
}
