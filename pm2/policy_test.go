package pm2

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]string{
		"":              "negotiation",
		"negotiation":   "negotiation",
		"rr":            "round-robin",
		"work-stealing": "work-stealing",
	} {
		got, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParsePolicy(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	if len(PolicyNames()) != 3 {
		t.Fatalf("PolicyNames() = %v", PolicyNames())
	}
}

// TestPolicyConfigAndBalancer boots a cluster per policy, dumps a burst
// of workers on node 0, balances, and checks every worker finishes with
// the iso-address invariants intact. Under the spreading policies some
// workers must finish away from node 0.
func TestPolicyConfigAndBalancer(t *testing.T) {
	for _, pol := range PolicyNames() {
		sys := NewSystem()
		sys.RegisterExamples()
		cl := sys.Boot(Config{Nodes: 4, Policy: pol})
		stop := cl.AttachBalancer(2_000)
		for i := 0; i < 8; i++ {
			cl.Spawn(0, "worker", 10_000)
		}
		cl.Run()
		stop()
		lines := cl.Output()
		if len(lines) != 8 {
			t.Fatalf("%s: finished = %d, want 8:\n%s", pol, len(lines), cl.OutputString())
		}
		if err := cl.Validate(); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		away := 0
		for _, l := range lines {
			if !strings.HasSuffix(l, "on node 0") {
				away++
			}
		}
		if pol != "negotiation" && away == 0 {
			t.Fatalf("%s: no worker left node 0", pol)
		}
	}
}

// TestDefaultPolicyPreservesPlacement: without a balancer, the default
// policy never reroutes a spawn — the seed's behavior, which the figure
// tests depend on.
func TestDefaultPolicyPreservesPlacement(t *testing.T) {
	sys := NewSystem()
	sys.RegisterExamples()
	cl := sys.Boot(Config{Nodes: 3})
	for node := 0; node < 3; node++ {
		cl.Spawn(node, "worker", 2_000)
	}
	cl.Run()
	for node := 0; node < 3; node++ {
		found := false
		for _, l := range cl.Output() {
			if strings.Contains(l, "finished on node "+string(rune('0'+node))) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no worker finished on its spawn node %d:\n%s", node, cl.OutputString())
		}
	}
}
