// Package pm2 is the public API of the PM2 reproduction: a distributed
// multithreaded runtime with transparent, preemptive, iso-address thread
// migration, after Antoniu, Bougé & Namyst, "An Efficient and Transparent
// Thread Migration Scheme in the PM2 Runtime System" (IPPS/SPDP RTSPP 1999).
//
// The runtime simulates a 1999 PoPC cluster — per-node 32-bit address
// spaces, Myrinet/BIP networking, Marcel user-level threads — in
// deterministic virtual time. Threads are small assembly programs whose
// stacks and isomalloc'd data live at explicit simulated addresses, which is
// what makes "pointers survive migration" a concrete, testable property.
//
// Basic use:
//
//	sys := pm2.NewSystem()
//	sys.RegisterExamples()            // the paper's p1..p4, workers, ...
//	cl := sys.Boot(pm2.Config{Nodes: 2})
//	cl.Spawn(0, "p4", 1000)           // the Figure 7 program
//	cl.Run()
//	fmt.Println(cl.OutputString())    // [node0] Element 0 = 1 ...
//	fmt.Printf("%+v\n", cl.Stats())
//
// # Placement policies
//
// Where threads are created and when they migrate is decided by a
// pluggable placement policy (internal/policy), selected by name through
// Config.Policy and driven by the load balancer that AttachBalancer
// starts:
//
//	cl := sys.Boot(pm2.Config{Nodes: 4, Policy: "work-stealing"})
//	stop := cl.AttachBalancer(2000)   // balance every 2 ms of virtual time
//
// Three policies ship: "negotiation" (the paper's threshold scheme, the
// default), "round-robin" (spread spawns and excess load), and
// "work-stealing" (starving nodes pull work). A policy implements
// PickSpawn / ShouldMigrate / PickTarget / OnLoadReport over sanitized
// load reports; to add one, implement policy.Policy deterministically,
// register it in policy.Parse, and the scenario harness picks it up.
//
// # Negotiation tuning
//
// The §4.4 slot negotiation has two orthogonal knobs. Config.Gather
// picks how the initiator collects peer bitmaps ("sequential",
// "batched", "tree", "delta"); Config.Arbiter picks the concurrency
// scheme — "global" (the paper's single node-0 lock), "sharded"
// (per-shard locks taken in canonical order, so disjoint negotiations
// run in parallel) or "optimistic" (no lock; version-stamped purchases
// that sellers validate against their bitmap journal, with
// deterministic backoff on decline):
//
//	cl := sys.Boot(pm2.Config{Nodes: 16, Gather: "delta", Arbiter: "sharded"})
//
// # Fault tolerance and checkpoint/restore
//
// A fail-stop fault plan (Config.Faults, e.g. "crash:1@3000") crashes
// nodes at scheduled virtual times. Failure detection is lease-based:
// heartbeats ride the load balancer's rounds, and a node that misses
// Config.HeartbeatMisses consecutive rounds (default 2) is declared
// dead. The declaration triggers recovery: the dying node's resident
// threads are frozen and evacuated as convoys to the survivors, and the
// dead rank's iso-address slot range is reclaimed — both without
// violating the single-ownership invariant. Stats reports Evacuations,
// EvacuatedThreads and ReclaimedSlots.
//
// Fault plans also schedule live partitions ("partition:1-2@3000..9000",
// store-and-forward healing) and slow links ("slow:1x4@3000..9000").
// With Config.RPCTimeoutMicros set, every protocol exchange awaiting a
// remote reply gets a virtual-time deadline with deterministic retry
// and graceful fallback, and detection becomes suspicion-based: a
// partitioned-but-alive node is routed around but never evacuated, and
// rejoins cleanly when the partition heals.
//
// Orthogonally, CheckpointBytes serializes a quiescent cluster to the
// digest-sealed "pm2ckpt" format (v1, or v2 when a paused balancer's
// round state rides along) and System.Restore boots a new cluster from
// it whose continuation is byte-identical to resuming the original —
// the pm2load -checkpoint/-restore flags from the command line. A
// restore composes with a fresh fault plan whose events lie after the
// checkpoint clock: the restart-and-refail experiment.
//
// # Scenarios
//
// internal/scenario runs deterministic workload generators (burst,
// hotspot, churn, deepchain, negostress, contend, serve, failover,
// partition) under each policy and emits comparable stats plus a
// canonical event trace; golden-trace tests pin the exact decision
// sequence. From the
// command line:
//
//	pm2bench -fig scenarios           # the policy × scenario matrix
//	pm2bench -fig contention          # concurrent initiators × arbiter
//	pm2bench -fig failover            # detection/evacuation/reclaim
//	pm2load -policy round-robin -balance 2000 p4 1000
package pm2

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/loadbal"
	ipm2 "repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// Config selects a cluster configuration. The zero value is a sensible
// 2-node cluster with the paper's defaults (round-robin slot distribution,
// iso-address migration, used-blocks packing, slot cache of 8).
type Config struct {
	// Nodes is the cluster size (default 2).
	Nodes int
	// Distribution is the initial slot distribution: "round-robin"
	// (default), "block-cyclic:K", or "partition".
	Distribution string
	// SlotCache bounds the mmapped-slot cache per node (default 8);
	// negative disables the cache.
	SlotCache int
	// Quantum is the scheduler quantum in instructions (default 64).
	Quantum int
	// WholeSlotPack ships entire slots on migration instead of only the
	// used blocks (the paper's unoptimized variant).
	WholeSlotPack bool
	// RelocationPolicy selects the paper's §2 baseline (stack relocation
	// with registered-pointer fixup) instead of iso-address migration.
	RelocationPolicy bool
	// RecordAllocations samples every pm2_isomalloc/malloc latency.
	RecordAllocations bool
	// PreBuySlots makes every negotiation over-purchase this many extra
	// contiguous slots, anticipating future large requests (§4.4).
	PreBuySlots int
	// Policy selects the thread-placement policy: "negotiation"
	// (default — the paper's scheme: spawns stay where asked, balancing
	// is threshold-driven), "round-robin" (spread spawns and excess
	// load across the cluster), or "work-stealing" (starving nodes pull
	// work from the richest). See ParsePolicy for the accepted aliases.
	// Orthogonal to RelocationPolicy, which picks the migration
	// *mechanism*; this picks the placement *decisions*.
	Policy string
	// Gather selects the §4.4 bitmap-gather strategy used by slot
	// negotiations: "sequential" (default — the paper's one-peer-at-a-
	// time gather), "batched" (one round of concurrent bitmap calls),
	// "tree" (binomial combining tree; the initiator receives O(log n)
	// merged maps) or "delta" (version-stamped incremental exchange:
	// peers ship only the bitmap words changed since the initiator's
	// cached view). See ParseGather for the accepted aliases.
	Gather string
	// Arbiter selects the negotiation concurrency scheme: "global"
	// (default — the paper's system-wide critical section on node 0),
	// "sharded" (the slot space is partitioned into shards arbitrated
	// by rank shard mod n; a negotiation locks only the shards its
	// planned purchase touches, in canonical order) or "optimistic"
	// (no lock; purchases are version-stamped and sellers decline plans
	// computed against a stale bitmap view). See ParseArbiter for the
	// accepted aliases.
	Arbiter string
	// Convoy enables the zero-copy scatter-gather migration pipeline:
	// migrations hand their slot spans to the NIC as a gather list (no
	// pack/install copies, only per-span DMA setup), and a balancing
	// decision that moves several threads to one destination ships them
	// as a single convoy message — one header, one wire latency for the
	// whole batch. Default off: the paper-faithful copying path.
	Convoy bool
	// Faults installs a fail-stop fault plan (internal/fault spec
	// syntax: comma-separated events, e.g. "crash:1@3000" crashes node 1
	// at 3000 µs of virtual time). A crashed node's resident threads are
	// evacuated to the survivors and its slot range reclaimed once the
	// heartbeat lease expires — see the package comment. Default "":
	// no faults, and the failure-detection path is entirely inert.
	Faults string
	// HeartbeatMisses is the failure detector's lease: a node that
	// misses this many consecutive heartbeat rounds is declared dead
	// (default 2). Heartbeats ride the load balancer's rounds, so
	// detection requires an attached balancer (or explicit
	// HeartbeatTick calls on the internal cluster).
	HeartbeatMisses int
	// RPCTimeoutMicros arms the partial-failure deadline layer: every
	// protocol exchange awaiting a remote reply — gather requests,
	// purchase and lock traffic, the remote-spawn call — is abandoned
	// after this many microseconds of virtual time, counted in
	// Stats.RPCTimeouts, and retried with deterministic capped backoff
	// or failed gracefully. It also splits heartbeat failure detection
	// into two stages: a silent node is first *suspected* (routed
	// around, reversibly — a healed partition rejoins it) and only
	// declared dead, evacuated and reclaimed after a confirmation
	// window. 0 (the default) disables the layer entirely — no timers,
	// traces byte-identical; negative derives the deadline from the
	// cost model (about two bitmap-sized round trips).
	RPCTimeoutMicros int64
}

func (c Config) toInternal() ipm2.Config {
	cfg := ipm2.Config{
		Nodes:        c.Nodes,
		Quantum:      int64(c.Quantum),
		CacheCap:     c.SlotCache,
		RecordAllocs: c.RecordAllocations,
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if c.SlotCache < 0 {
		cfg.NoCache = true
		cfg.CacheCap = 0
	}
	if c.WholeSlotPack {
		cfg.Pack = ipm2.PackWhole
	}
	if c.RelocationPolicy {
		cfg.Policy = ipm2.PolicyRelocate
	}
	cfg.PreBuySlots = c.PreBuySlots
	cfg.Convoy = c.Convoy
	cfg.HeartbeatMisses = c.HeartbeatMisses
	if c.RPCTimeoutMicros > 0 {
		cfg.RPCTimeout = simtime.Time(c.RPCTimeoutMicros) * simtime.Microsecond
	} else if c.RPCTimeoutMicros < 0 {
		cfg.RPCTimeout = -1 // cost-model default, resolved by NewChecked
	}
	if c.Faults != "" {
		plan, err := fault.Parse(c.Faults)
		if err != nil {
			panic(err)
		}
		cfg.Faults = plan
	}
	dist, err := ParseDistribution(c.Distribution)
	if err != nil {
		panic(err)
	}
	cfg.Dist = dist
	pol, err := policy.Parse(c.Policy)
	if err != nil {
		panic(err)
	}
	cfg.Placement = pol
	gather, err := ipm2.ParseGatherMode(c.Gather)
	if err != nil {
		panic(err)
	}
	cfg.Gather = gather
	arbiter, err := ipm2.ParseArbiterMode(c.Arbiter)
	if err != nil {
		panic(err)
	}
	cfg.Arbiter = arbiter
	return cfg
}

// ParseArbiter validates a negotiation-arbiter name and returns its
// canonical form. Accepted: "global" ("lock", ""), "sharded" ("shard"),
// "optimistic" ("opt", "occ").
func ParseArbiter(s string) (string, error) {
	a, err := ipm2.ParseArbiterMode(s)
	if err != nil {
		return "", err
	}
	return a.String(), nil
}

// ArbiterNames lists the canonical negotiation-arbiter names.
func ArbiterNames() []string { return ipm2.ArbiterModeNames() }

// ParseGather validates a gather-strategy name and returns its canonical
// form. Accepted: "sequential" ("seq", ""), "batched" ("batch"), "tree",
// "delta" ("incremental").
func ParseGather(s string) (string, error) {
	g, err := ipm2.ParseGatherMode(s)
	if err != nil {
		return "", err
	}
	return g.String(), nil
}

// GatherNames lists the canonical gather-strategy names.
func GatherNames() []string { return ipm2.GatherModeNames() }

// ParsePolicy validates a placement-policy name and returns its
// canonical form. Accepted: "negotiation" ("threshold", ""),
// "round-robin" ("rr", "spread"), "work-stealing" ("steal", "ws").
func ParsePolicy(s string) (string, error) {
	p, err := policy.Parse(s)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}

// PolicyNames lists the canonical placement-policy names.
func PolicyNames() []string { return policy.Names() }

// ParseDistribution resolves a distribution name. Empty means round-robin.
func ParseDistribution(s string) (core.Distribution, error) {
	switch {
	case s == "" || s == "round-robin" || s == "rr":
		return core.RoundRobin{}, nil
	case s == "partition":
		return core.Partition{}, nil
	case strings.HasPrefix(s, "block-cyclic:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "block-cyclic:"))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("pm2: bad block-cyclic size in %q", s)
		}
		return core.BlockCyclic{K: k}, nil
	}
	return nil, fmt.Errorf("pm2: unknown distribution %q", s)
}

// System holds the replicated SPMD program image under construction.
// Register every program before booting a cluster from it.
type System struct {
	im *isa.Image
}

// NewSystem returns a System with an empty program image.
func NewSystem() *System { return &System{im: isa.NewImage()} }

// Register assembles a program (see internal/asm for the syntax) into the
// image.
func (s *System) Register(src string) error {
	_, err := asm.Assemble(s.im, src)
	return err
}

// MustRegister is Register panicking on error.
func (s *System) MustRegister(src string) {
	if err := s.Register(src); err != nil {
		panic(err)
	}
}

// RegisterExamples loads the paper's example programs (p1, p2, p2r, p3, p4,
// p4m) and the workload programs (worker, pingpong, heapjunk, allocone).
func (s *System) RegisterExamples() { progs.All(s.im) }

// Boot builds a cluster over the image; the image is sealed and must not be
// modified afterwards (it is the same binary on every node).
func (s *System) Boot(cfg Config) *Cluster {
	return &Cluster{inner: ipm2.New(cfg.toInternal(), s.im)}
}

// Cluster is a running PM2 configuration in deterministic virtual time.
type Cluster struct {
	inner *ipm2.Cluster
}

// Internal exposes the underlying runtime cluster for advanced scenarios
// (benchmarks, load balancing modules, invariant checks).
func (c *Cluster) Internal() *ipm2.Cluster { return c.inner }

// Spawn creates a thread on node running the named program with one
// argument (delivered in r1).
func (c *Cluster) Spawn(node int, program string, arg uint32) {
	c.inner.Spawn(node, program, arg)
}

// SpawnWait creates the thread and returns its id once creation executed.
func (c *Cluster) SpawnWait(node int, program string, arg uint32) uint32 {
	return c.inner.SpawnSync(node, program, arg)
}

// Run drives the cluster until every thread has exited or blocked forever.
func (c *Cluster) Run() { c.inner.Run(0) }

// RunForMicros advances virtual time by the given number of microseconds.
func (c *Cluster) RunForMicros(us int64) {
	c.inner.RunFor(simtime.Time(us) * simtime.Microsecond)
}

// NowMicros returns the current virtual time in microseconds.
func (c *Cluster) NowMicros() float64 { return c.inner.Now().Micros() }

// Output returns the pm2_printf trace lines emitted so far.
func (c *Cluster) Output() []string { return c.inner.Trace().Lines() }

// OutputString returns the whole trace as one string.
func (c *Cluster) OutputString() string { return c.inner.Trace().String() }

// MigrateThread preemptively migrates thread tid (currently on node src) to
// node dest at its next quantum boundary. It reports whether the thread was
// found on src.
func (c *Cluster) MigrateThread(src int, tid uint32, dest int) bool {
	found := false
	done := false
	c.inner.At(src, func(n *ipm2.Node) {
		found = n.Scheduler().RequestMigration(tid, dest)
		done = true
	})
	for !done && c.inner.Engine().Step() {
	}
	return found
}

// ThreadsOn returns the number of threads resident on node.
func (c *Cluster) ThreadsOn(node int) int {
	return c.inner.Node(node).Scheduler().Threads()
}

// Locate returns the node currently hosting thread tid, or -1.
func (c *Cluster) Locate(tid uint32) int {
	for i := 0; i < c.inner.Nodes(); i++ {
		if _, ok := c.inner.Node(i).Scheduler().Lookup(tid); ok {
			return i
		}
	}
	return -1
}

// AttachBalancer starts the generic external load balancer (§2): every
// periodMicros of virtual time it samples node loads into the cluster's
// policy engine and executes the placement policy's migration decisions.
// The returned stop function disables further rounds.
func (c *Cluster) AttachBalancer(periodMicros int64) (stop func()) {
	b := loadbal.Attach(c.inner, loadbal.Config{
		Period: simtime.Time(periodMicros) * simtime.Microsecond,
	})
	return b.Stop
}

// CheckpointBytes drives the cluster to a quiescent instant — every
// runnable thread parked, every in-flight message landed — and returns
// its complete state serialized in the digest-sealed "pm2ckpt" text
// format (v2 when an attached balancer's round state rides along). The cluster is left parked: call Resume to continue it in
// place, or feed the bytes to System.Restore (here or in another
// process) for a continuation byte-identical to resuming the original.
// Refused, with an error: clusters with a fault plan installed, the
// relocation baseline, and clusters whose threads used the
// non-migratable pm2_malloc heap.
func (c *Cluster) CheckpointBytes() ([]byte, error) {
	ck, err := c.inner.Checkpoint()
	if err != nil {
		return nil, err
	}
	return ck.Encode(), nil
}

// Resume continues a cluster parked by CheckpointBytes in place.
func (c *Cluster) Resume() { c.inner.Resume() }

// Restore boots a cluster from a pm2ckpt image produced by
// CheckpointBytes. The structural configuration — node count, slot
// distribution, gather strategy, arbiter, convoy pipeline, pack mode,
// heartbeat lease — is taken from the checkpoint itself, so the
// operator re-specifies nothing; the System only has to carry the same
// program image the capture ran. The restored cluster's continuation is
// byte-identical to resuming the original in place.
func (s *System) Restore(data []byte) (*Cluster, error) {
	ck, err := ipm2.DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	dist, err := ipm2.DistFromName(ck.Dist)
	if err != nil {
		return nil, err
	}
	gather, err := ipm2.ParseGatherMode(ck.Gather)
	if err != nil {
		return nil, err
	}
	arbiter, err := ipm2.ParseArbiterMode(ck.Arbiter)
	if err != nil {
		return nil, err
	}
	inner, err := ipm2.RestoreCluster(ipm2.Config{
		Nodes:           ck.Nodes,
		Dist:            dist,
		Gather:          gather,
		Arbiter:         arbiter,
		Convoy:          ck.Convoy,
		Pack:            ipm2.PackMode(ck.Pack),
		HeartbeatMisses: ck.HeartbeatMisses,
	}, s.im, ck)
	if err != nil {
		return nil, err
	}
	// A pm2ckpt v2 image carries the round state of the balancer the
	// capture paused; reattach it so the restored continuation keeps
	// the cadence (and the Rounds/Moves accounting) the original had.
	if ck.Balancer != nil {
		loadbal.AttachFromCheckpoint(inner, loadbal.Config{}, *ck.Balancer)
	}
	return &Cluster{inner: inner}, nil
}

// Defragment triggers the paper's §4.4 global restructuring: every node
// surrenders its free slots to node 0, which redistributes them as per-node
// contiguous ranges, maximizing the contiguity available to multi-slot
// allocations. Runs synchronously in virtual time.
func (c *Cluster) Defragment() { c.inner.DefragmentSync(0) }

// Validate checks the cluster-wide iso-address invariants (single slot
// ownership, no double mapping, allocator structural integrity).
func (c *Cluster) Validate() error { return c.inner.CheckInvariants() }

// Stats summarizes the run.
type Stats struct {
	// VirtualMicros is the virtual time consumed so far.
	VirtualMicros float64
	// Migrations and the average/worst end-to-end migration latency.
	Migrations         int
	AvgMigrationMicros float64
	MaxMigrationMicros float64
	// MigratedBytes totals the slot-image payload bytes iso-address
	// migrations installed; Convoys counts multi-thread convoy messages
	// (Config.Convoy).
	MigratedBytes uint64
	Convoys       int
	// Negotiations and the average latency of the slot negotiation
	// protocol.
	Negotiations         int
	AvgNegotiationMicros float64
	// Defragmentations counts §4.4 global restructurings.
	Defragmentations int
	// Failure recovery (Config.Faults): dead-node declarations that ran
	// the evacuation path, the threads moved off dead nodes, and the
	// owned-free slots re-dealt from dead ranks to the survivors.
	Evacuations      int
	EvacuatedThreads int
	ReclaimedSlots   int
	// RPCTimeouts counts protocol waits abandoned at their deadline
	// (Config.RPCTimeoutMicros), whether the operation then retried,
	// fell back or failed.
	RPCTimeouts int
	// Suspicions and Rejoins count the reversible detection transitions
	// under the partial-failure model: nodes routed around after missing
	// their lease, and suspected nodes cleared after answering again.
	Suspicions int
	Rejoins    int
	// Network traffic.
	NetworkMessages uint64
	NetworkBytes    uint64
}

// Stats returns the aggregate measurements so far.
func (c *Cluster) Stats() Stats {
	st := c.inner.Stats()
	out := Stats{
		VirtualMicros:    c.inner.Now().Micros(),
		Migrations:       st.Migrations,
		MigratedBytes:    st.MigratedBytes,
		Convoys:          st.Convoys,
		Negotiations:     st.Negotiations,
		Defragmentations: st.Defragmentations,
		Evacuations:      st.Evacuations,
		EvacuatedThreads: st.EvacuatedThreads,
		ReclaimedSlots:   st.ReclaimedSlots,
		RPCTimeouts:      st.RPCTimeouts,
		Suspicions:       st.Suspicions,
		Rejoins:          st.Rejoins,
		NetworkMessages:  st.Net.Messages,
		NetworkBytes:     st.Net.Bytes,
	}
	out.AvgMigrationMicros = st.AvgMigrationMicros()
	out.AvgNegotiationMicros = st.AvgNegotiationMicros()
	var max simtime.Time
	for _, l := range st.MigrationLatencies {
		if l > max {
			max = l
		}
	}
	out.MaxMigrationMicros = max.Micros()
	return out
}

// AllocationSample is one recorded allocation (Config.RecordAllocations).
type AllocationSample struct {
	Node          int
	Size          uint32
	Isomalloc     bool
	LatencyMicros float64
	OK            bool
}

// Allocations returns the recorded allocation samples.
func (c *Cluster) Allocations() []AllocationSample {
	in := c.inner.AllocSamples()
	out := make([]AllocationSample, len(in))
	for i, s := range in {
		out[i] = AllocationSample{
			Node:          s.Node,
			Size:          s.Size,
			Isomalloc:     s.Iso,
			LatencyMicros: s.Latency.Micros(),
			OK:            s.OK,
		}
	}
	return out
}
